"""The serving subsystem: persistent store, cache, server, telemetry."""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from urllib.request import urlopen

import pytest

from repro.cluster import cluster1
from repro.core.naive import naive_cuboid
from repro.core.thresholds import CountThreshold, SumThreshold
from repro.errors import (
    DeadlineExceededError,
    PlanError,
    SchemaError,
    ServerOverloadedError,
)
from repro.online import LeafMaterialization
from repro.serve import (
    AdmissionGate,
    CircuitBreaker,
    CubeServer,
    CubeStore,
    Deadline,
    QueryCache,
    ServerTelemetry,
)
from repro.serve.telemetry import percentile


def oracle(relation, cuboid, minsup):
    return {
        cell: agg
        for cell, agg in naive_cuboid(relation, cuboid).items()
        if agg[0] >= minsup
    }


@pytest.fixture
def store(small_skewed, tmp_path):
    built = CubeStore.build(small_skewed, tmp_path / "store",
                            cluster_spec=cluster1(3))
    yield built
    built.close()


class TestCubeStore:
    def test_round_trip_matches_fresh_materialization(self, small_skewed, tmp_path):
        """Acceptance: build -> close -> reopen -> query, identical to a
        fresh LeafMaterialization on every cuboid and threshold."""
        CubeStore.build(small_skewed, tmp_path / "s", cluster_spec=cluster1(3)).close()
        reopened = CubeStore.open(tmp_path / "s")
        fresh = LeafMaterialization(small_skewed, cluster_spec=cluster1(3))
        for cuboid in ((), ("A",), ("A", "C"), ("B", "D"), ("A", "B", "C", "D")):
            for minsup in (1, 2, 4):
                assert reopened.query(cuboid, minsup) == fresh.query(cuboid, minsup)

    def test_query_matches_oracle(self, small_skewed, store):
        for cuboid in (("A",), ("C", "A"), ("B", "C", "D")):
            got = store.query(cuboid, minsup=2)
            expected = oracle(small_skewed, store.canonical(cuboid), 2)
            assert {k: (c, pytest.approx(v)) for k, (c, v) in got.items()} == expected

    def test_accepts_threshold_objects(self, small_skewed, store):
        got = store.query(("A",), minsup=SumThreshold(500))
        assert got
        assert all(v >= 500 for _c, v in got.values())

    def test_leaves_load_lazily(self, small_skewed, tmp_path):
        CubeStore.build(small_skewed, tmp_path / "s", cluster_spec=cluster1(2)).close()
        reopened = CubeStore.open(tmp_path / "s")
        assert reopened.loaded_leaves() == []
        reopened.query(("A",), minsup=1)
        assert reopened.loaded_leaves() == [("A", "D")]

    def test_point_query(self, small_skewed, store):
        full = store.query(("A", "B"), minsup=1)
        for cell, agg in list(full.items())[:5]:
            assert store.point(("A", "B"), cell) == agg
        assert store.point(("A", "B"), (999, 999)) is None

    def test_point_uses_index_without_loading_leaf(self, small_skewed, tmp_path):
        CubeStore.build(small_skewed, tmp_path / "s", cluster_spec=cluster1(2)).close()
        reopened = CubeStore.open(tmp_path / "s")
        expected = oracle(small_skewed, ("A", "B"), 1)
        cell = sorted(expected)[0]
        count, value = reopened.point(("A", "B"), cell)
        assert (count, pytest.approx(value)) == expected[cell]
        assert reopened.loaded_leaves() == []  # seek + run scan, no full read

    def test_point_respects_threshold(self, small_skewed, store):
        full = store.query(("A",), minsup=1)
        cell = min(full, key=lambda c: full[c][0])
        too_high = full[cell][0] + 1
        assert store.point(("A",), cell, minsup=too_high) is None

    def test_append_matches_rebuild_and_bumps_generation(self, small_skewed, tmp_path):
        first = small_skewed.slice(0, 250)
        rest = small_skewed.slice(250, len(small_skewed))
        store = CubeStore.build(first, tmp_path / "s", cluster_spec=cluster1(2))
        assert store.generation == 1
        store.append(rest)
        assert store.generation == 2
        fresh = LeafMaterialization(small_skewed, cluster_spec=cluster1(2))
        for cuboid in (("A",), ("A", "B"), ("B", "D")):
            assert store.query(cuboid, 2) == fresh.query(cuboid, 2)
        store.close()
        # the append was persisted, not just in-memory
        reopened = CubeStore.open(tmp_path / "s")
        assert reopened.generation == 2
        assert reopened.total_rows == len(small_skewed)
        assert reopened.query(("A", "C"), 2) == fresh.query(("A", "C"), 2)

    def test_closed_store_rejects_queries(self, small_skewed, tmp_path):
        store = CubeStore.build(small_skewed, tmp_path / "s", cluster_spec=cluster1(2))
        store.close()
        with pytest.raises(PlanError):
            store.query(("A",))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SchemaError):
            CubeStore.open(tmp_path)

    def test_unknown_format_version(self, small_skewed, tmp_path):
        CubeStore.build(small_skewed, tmp_path / "s", cluster_spec=cluster1(2)).close()
        manifest_path = tmp_path / "s" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SchemaError):
            CubeStore.open(tmp_path / "s")

    def test_unknown_dimension_rejected(self, store):
        with pytest.raises(SchemaError):
            store.query(("A", "nope"))

    def test_total_cells_from_manifest(self, store):
        assert store.total_cells() == sum(
            len(store.leaf_items(leaf)) for leaf in store.leaves
        )


class TestQueryCache:
    def test_hit_after_put(self):
        cache = QueryCache(capacity=4)
        cache.put(("A",), 2, 1, {"x": 1})
        assert cache.get(("A",), 2, 1) == {"x": 1}
        assert cache.stats()["hits"] == 1

    def test_threshold_keying_is_canonical(self):
        cache = QueryCache(capacity=4)
        cache.put(("A",), 2, 1, "answer")
        # the int shorthand and the explicit threshold share an entry
        assert cache.get(("A",), CountThreshold(2), 1) == "answer"
        assert cache.get(("A",), SumThreshold(2), 1) is None

    def test_generation_invalidation(self):
        cache = QueryCache(capacity=4)
        cache.put(("A",), 2, 1, "old")
        assert cache.get(("A",), 2, 2) is None  # stale: dropped, not served
        assert cache.stats()["invalidations"] == 1
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        cache.put(("A",), 1, 1, "a")
        cache.put(("B",), 1, 1, "b")
        cache.get(("A",), 1, 1)  # A becomes most-recent
        cache.put(("C",), 1, 1, "c")  # evicts B
        assert cache.get(("B",), 1, 1) is None
        assert cache.get(("A",), 1, 1) == "a"
        assert cache.stats()["evictions"] == 1

    def test_capacity_zero_disables(self):
        cache = QueryCache(capacity=0)
        cache.put(("A",), 1, 1, "a")
        assert cache.get(("A",), 1, 1) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(PlanError):
            QueryCache(capacity=-1)

    def test_thread_safety_under_contention(self):
        cache = QueryCache(capacity=16)

        def worker(i):
            for j in range(200):
                cache.put(("D%d" % (j % 32),), 1, 1, j)
                cache.get(("D%d" % (j % 32),), 1, 1)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(8)))
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 200
        assert len(cache) <= 16


class TestTelemetry:
    def test_percentile_nearest_rank(self):
        values = sorted(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile([], 50) == 0.0

    def test_summary_by_source(self):
        telemetry = ServerTelemetry()
        for latency in (0.001, 0.002, 0.003):
            telemetry.record(("A",), "COUNT(*) >= 1", "store", latency)
        telemetry.record(("A",), "COUNT(*) >= 1", "cache", 0.0001)
        summary = telemetry.summary()
        assert summary["queries"] == 4
        assert summary["by_source"]["store"]["count"] == 3
        assert summary["by_source"]["cache"]["count"] == 1
        assert summary["by_source"]["store"]["p50_ms"] == pytest.approx(2.0)
        assert summary["by_source"]["compute"]["count"] == 0

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            ServerTelemetry().record(("A",), "t", "disk", 0.1)

    def test_concurrent_recording(self):
        telemetry = ServerTelemetry()

        def worker(_):
            for _i in range(100):
                telemetry.record(("A",), "t", "store", 0.001)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(8)))
        assert len(telemetry) == 800


class TestCubeServer:
    def test_cache_then_store_sources(self, store):
        with CubeServer(store) as server:
            first = server.query(("A", "B"), minsup=2)
            second = server.query(("B", "A"), minsup=CountThreshold(2))
            assert first.source == "store"
            assert second.source == "cache"  # canonical cuboid + threshold key
            assert first.cells == second.cells

    def test_concurrent_queries_oracle_exact_with_cache_hits(
            self, small_skewed, store):
        """Acceptance: >= 8 threads, every answer oracle-exact, and the
        repeated workload reports a positive cache hit rate."""
        workload = [
            (cuboid, minsup)
            for cuboid in (("A",), ("B",), ("A", "B"), ("A", "C"), ("B", "D"),
                           ("C", "D"), ("A", "B", "C"), ("A", "B", "C", "D"))
            for minsup in (1, 2, 3)
        ] * 3  # repeats make cache hits inevitable
        expected = {
            (cuboid, minsup): oracle(small_skewed, cuboid, minsup)
            for cuboid, minsup in set(workload)
        }
        with CubeServer(store, max_workers=8) as server:
            answers = server.query_many(workload)
            for (cuboid, minsup), answer in zip(workload, answers):
                got = {k: (c, pytest.approx(v)) for k, (c, v) in answer.cells.items()}
                assert got == expected[(cuboid, minsup)], (cuboid, minsup)
            stats = server.stats()
        assert stats["cache"]["hit_rate"] > 0
        assert stats["telemetry"]["queries"] == len(workload)

    def test_compute_fallback_for_uncovered_dims(self, small_skewed, tmp_path):
        partial = CubeStore.build(small_skewed, tmp_path / "partial",
                                  dims=("A", "B", "C"), cluster_spec=cluster1(2))
        with CubeServer(partial, relation=small_skewed) as server:
            answer = server.query(("A", "D"), minsup=2)
            assert answer.source == "compute"
            expected = oracle(small_skewed, ("A", "D"), 2)
            got = {k: (c, pytest.approx(v)) for k, (c, v) in answer.cells.items()}
            assert got == expected
            # the computed answer is cached like any other
            assert server.query(("A", "D"), minsup=2).source == "cache"
        partial.close()

    def test_uncovered_without_relation_raises(self, small_skewed, tmp_path):
        partial = CubeStore.build(small_skewed, tmp_path / "partial",
                                  dims=("A", "B"), cluster_spec=cluster1(2))
        with CubeServer(partial) as server:
            with pytest.raises(SchemaError):
                server.query(("A", "D"), minsup=1)
        partial.close()

    def test_append_invalidates_cached_answers(self, small_skewed, tmp_path):
        half = len(small_skewed) // 2
        base = small_skewed.slice(0, half)
        extra = small_skewed.slice(half, len(small_skewed))
        inc = CubeStore.build(base, tmp_path / "inc", cluster_spec=cluster1(2))
        with CubeServer(inc) as server:
            before = server.query(("A",), minsup=1)
            assert server.query(("A",), minsup=1).source == "cache"
            server.append(extra)
            after = server.query(("A",), minsup=1)
            assert after.source == "store"  # generation bump: no stale hit
            assert sum(c for c, _v in after.cells.values()) == len(small_skewed)
            assert sum(c for c, _v in before.cells.values()) == half
        inc.close()

    def test_server_over_in_memory_materialization(self, small_skewed):
        materialization = LeafMaterialization(small_skewed, cluster_spec=cluster1(2))
        with CubeServer(materialization) as server:
            answer = server.query(("A", "B"), minsup=2)
            assert answer.cells == oracle(small_skewed, ("A", "B"), 2)
            server.append(small_skewed.slice(0, 10))
            assert server.query(("A", "B"), minsup=2).source == "store"


class TestHttpEndpoint:
    @pytest.fixture
    def endpoint(self, store):
        server = CubeServer(store, max_workers=4)
        endpoint = server.serve_http(port=0)
        yield endpoint, server
        server.close()

    def _get(self, endpoint, path):
        with urlopen(endpoint.url + path) as response:
            return response.status, json.loads(response.read())

    def test_query_roll_up_and_drill_down(self, small_skewed, endpoint):
        endpoint, _server = endpoint
        status, rolled = self._get(endpoint, "/query?cuboid=A&minsup=2")
        assert status == 200
        assert rolled["source"] in ("store", "cache")
        expected = oracle(small_skewed, ("A",), 2)
        assert {tuple(c["cell"]): c["count"] for c in rolled["cells"]} == {
            cell: count for cell, (count, _v) in expected.items()
        }
        _status, drilled = self._get(endpoint, "/query?cuboid=A,B&minsup=2")
        assert len(drilled["cells"]) >= 0
        assert drilled["cuboid"] == ["A", "B"]

    def test_point_lookup(self, small_skewed, endpoint):
        endpoint, _server = endpoint
        expected = oracle(small_skewed, ("A", "B"), 1)
        cell = sorted(expected)[0]
        _status, payload = self._get(
            endpoint, "/point?cuboid=A,B&cell=%d,%d" % cell)
        assert payload["cells"][0]["count"] == expected[cell][0]

    def test_min_sum_threshold(self, small_skewed, endpoint):
        endpoint, _server = endpoint
        _status, payload = self._get(endpoint, "/query?cuboid=A&min_sum=500")
        assert payload["threshold"] == "SUM(measure) >= 500"
        assert all(c["sum"] >= 500 for c in payload["cells"])

    def test_stats_and_cuboids(self, endpoint):
        endpoint, server = endpoint
        self._get(endpoint, "/query?cuboid=A&minsup=1")
        self._get(endpoint, "/query?cuboid=A&minsup=1")
        _status, stats = self._get(endpoint, "/stats")
        assert stats["cache"]["hits"] >= 1
        assert stats["telemetry"]["queries"] >= 2
        _status, cuboids = self._get(endpoint, "/cuboids")
        assert cuboids["dims"] == list(server.store.dims)
        assert len(cuboids["leaves"]) == len(server.store.leaves)

    def test_bad_requests(self, endpoint):
        endpoint, _server = endpoint
        import urllib.error
        for path in ("/query?cuboid=A,nope", "/query?cuboid=A&minsup=zero",
                     "/nothing"):
            with pytest.raises(urllib.error.HTTPError) as info:
                self._get(endpoint, path)
            assert info.value.code in (400, 404)

    def test_concurrent_http_clients(self, small_skewed, endpoint):
        endpoint, server = endpoint
        expected = {
            dim: oracle(small_skewed, (dim,), 2) for dim in small_skewed.dims
        }
        errors = []

        def client(i):
            dim = small_skewed.dims[i % len(small_skewed.dims)]
            try:
                with urlopen("%s/query?cuboid=%s&minsup=2" % (endpoint.url, dim)) as r:
                    payload = json.loads(r.read())
                got = {tuple(c["cell"]): c["count"] for c in payload["cells"]}
                want = {cell: count for cell, (count, _v) in expected[dim].items()}
                if got != want:
                    errors.append((dim, got, want))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((dim, exc))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(24)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:3]


class TestGracefulDegradation:
    """Bounded admission, deadlines and the recompute circuit breaker."""

    def test_admission_gate_sheds_past_max_pending(self, store, small_skewed):
        release = threading.Event()

        class SlowStore:
            """Wrap the store so queries block until released."""

            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def query(self, cuboid, minsup=1):
                release.wait(10.0)
                return self._inner.query(cuboid, minsup=minsup)

        server = CubeServer(SlowStore(store), max_workers=2, max_pending=64,
                            cache_size=0)
        server.gate = AdmissionGate(3)
        try:
            futures = [server.submit(("A",), 1) for _ in range(3)]
            with pytest.raises(ServerOverloadedError) as exc_info:
                server.submit(("A",), 1)
            assert exc_info.value.pending == 3
            release.set()
            for future in futures:
                assert future.result(timeout=10.0).cells
            # Completed queries release their slots: admission reopens.
            assert server.gate.stats()["pending"] == 0
            server.submit(("A",), 1).result(timeout=10.0)
        finally:
            release.set()
            server.close()

    def test_default_max_pending_scales_with_workers(self, store):
        server = CubeServer(store, max_workers=8)
        assert server.gate.limit == 128
        server.close()
        tiny = CubeServer(store, max_workers=1)
        assert tiny.gate.limit == 64
        tiny.close()

    def test_deadline_counts_queue_time(self, store):
        server = CubeServer(store)
        try:
            clock = [100.0]
            deadline = Deadline(0.05, clock=lambda: clock[0])
            clock[0] += 0.2  # the query "waited" 200 ms before running
            with pytest.raises(DeadlineExceededError) as exc_info:
                server.query(("A",), 1, deadline_s=deadline)
            assert "admission queue" in str(exc_info.value)
            assert server.telemetry.event_counts()["deadline_exceeded"] == 1
        finally:
            server.close()

    def test_query_without_deadline_is_unbounded(self, store, small_skewed):
        server = CubeServer(store)
        try:
            answer = server.query(("A",), 2)
            assert answer.cells == oracle(small_skewed, ("A",), 2)
        finally:
            server.close()

    def test_breaker_trips_on_failing_recompute_and_store_hits_survive(
            self, small_skewed, tmp_path):
        # A relation is present so uncovered cuboids go to compute, but
        # the compute path is broken: the breaker must trip and cache /
        # store answers must keep flowing.
        partial = CubeStore.build(small_skewed, tmp_path / "partial",
                                  dims=("A", "B", "C"),
                                  cluster_spec=cluster1(2))
        server = CubeServer(partial, relation=small_skewed,
                            breaker=CircuitBreaker(failure_threshold=2,
                                                   reset_after_s=60.0))
        server._compute = lambda cuboid, threshold: (_ for _ in ()).throw(
            RuntimeError("compute backend down"))
        try:
            uncovered = ("A", "D")  # D is not in the materialized dims
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    server.query(uncovered, 1)
            assert server.breaker.state == "open"
            # Third call fails fast with overload, not the RuntimeError.
            with pytest.raises(ServerOverloadedError) as exc_info:
                server.query(uncovered, 1)
            assert "circuit breaker is open" in str(exc_info.value)
            # Store-served queries are unaffected while the breaker is open.
            answer = server.query(("A",), 2)
            assert answer.source == "store"
            assert answer.cells == oracle(small_skewed, ("A",), 2)
            stats = server.stats()["resilience"]
            assert stats["breaker"]["state"] == "open"
            assert stats["breaker"]["trips"] == 1
        finally:
            server.close()
            partial.close()

    def test_breaker_recovers_after_cooldown(self, small_skewed, tmp_path):
        partial = CubeStore.build(small_skewed, tmp_path / "partial",
                                  dims=("A", "B", "C"),
                                  cluster_spec=cluster1(2))
        clock = [100.0]
        server = CubeServer(partial, relation=small_skewed, cache_size=0,
                            breaker=CircuitBreaker(failure_threshold=1,
                                                   reset_after_s=5.0,
                                                   clock=lambda: clock[0]))
        real_compute = server._compute
        server._compute = lambda cuboid, threshold: (_ for _ in ()).throw(
            RuntimeError("transient outage"))
        try:
            with pytest.raises(RuntimeError):
                server.query(("A", "D"), 1)
            assert server.breaker.state == "open"
            server._compute = real_compute  # the dependency heals
            clock[0] += 5.0                 # cool-down elapses
            answer = server.query(("A", "D"), 1)  # half-open probe succeeds
            assert answer.source == "compute"
            assert server.breaker.state == "closed"
        finally:
            server.close()
            partial.close()

    def test_deadline_bounds_slow_compute(self, small_skewed, tmp_path):
        partial = CubeStore.build(small_skewed, tmp_path / "partial",
                                  dims=("A", "B", "C"),
                                  cluster_spec=cluster1(2))
        server = CubeServer(partial, relation=small_skewed)

        def glacial(cuboid, threshold):
            time.sleep(5.0)
            return {}

        server._compute = glacial
        try:
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError):
                server.query(("A", "D"), 1, deadline_s=0.2)
            assert time.perf_counter() - started < 2.0
            server.breaker.record_success()  # reset for teardown
        finally:
            server.close()
            partial.close()

    def test_health_endpoint_surface(self, store):
        server = CubeServer(store, max_pending=77)
        try:
            health = server.health()
            assert health["status"] == "ok"
            assert health["max_pending"] == 77
            assert health["breaker"] == "closed"
        finally:
            server.close()
        assert server.health()["status"] == "closed"


class TestServerClose:
    """close() is idempotent and deterministically drains or cancels."""

    def test_close_is_idempotent_and_thread_safe(self, store):
        server = CubeServer(store)
        threads = [threading.Thread(target=server.close) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.close()  # and once more for good measure

    def test_submit_after_close_raises(self, store):
        server = CubeServer(store)
        server.close()
        with pytest.raises(PlanError):
            server.submit(("A",), 1)
        with pytest.raises(PlanError):
            server.serve_http(port=0)

    def test_close_drains_in_flight_queries(self, store, small_skewed):
        server = CubeServer(store, max_workers=2)
        futures = [server.submit(("A",), 2) for _ in range(8)]
        server.close()
        for future in futures:
            assert future.done()
            assert future.result().cells == oracle(small_skewed, ("A",), 2)

    def test_close_cancel_pending_cancels_unstarted_work(self, store):
        import concurrent.futures

        release = threading.Event()

        class BlockingStore:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def query(self, cuboid, minsup=1):
                release.wait(10.0)
                return self._inner.query(cuboid, minsup=minsup)

        server = CubeServer(BlockingStore(store), max_workers=1, cache_size=0)
        running = server.submit(("A",), 1)
        queued = [server.submit(("A",), 1) for _ in range(4)]

        closer = threading.Thread(target=server.close,
                                  kwargs={"cancel_pending": True})
        closer.start()
        release.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()
        assert running.result(timeout=1.0).cells  # the started one drained
        for future in queued:
            assert future.done()
            assert future.cancelled() or future.result(timeout=1.0)
        assert any(future.cancelled() for future in queued)
        with pytest.raises(concurrent.futures.CancelledError):
            next(f for f in queued if f.cancelled()).result()

    def test_gate_slots_released_on_cancellation(self, store):
        release = threading.Event()

        class BlockingStore:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def query(self, cuboid, minsup=1):
                release.wait(10.0)
                return self._inner.query(cuboid, minsup=minsup)

        server = CubeServer(BlockingStore(store), max_workers=1, cache_size=0)
        for _ in range(5):
            server.submit(("A",), 1)
        release.set()
        server.close(cancel_pending=True)
        assert server.gate.stats()["pending"] == 0


class TestHttpHardening:
    """The endpoint degrades with structured JSON, never a traceback."""

    @pytest.fixture
    def endpoint(self, store):
        server = CubeServer(store, max_workers=4)
        endpoint = server.serve_http(port=0)
        yield endpoint, server
        server.close()

    def _get_error(self, endpoint, path, headers=None):
        import urllib.error
        from urllib.request import Request

        request = Request(endpoint.url + path, headers=headers or {})
        try:
            with urlopen(request) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_unknown_path_is_structured_404(self, endpoint):
        endpoint, _server = endpoint
        status, payload = self._get_error(endpoint, "/no/such/endpoint")
        assert status == 404
        assert payload["kind"] == "not_found"
        assert "Traceback" not in payload["error"]

    def test_malformed_query_is_structured_400(self, endpoint):
        endpoint, _server = endpoint
        for path in ("/query?cuboid=A&minsup=zero",
                     "/query?cuboid=A,nope",
                     "/query?cuboid=A&deadline_ms=-5",
                     "/point?cuboid=A&cell=x"):
            status, payload = self._get_error(endpoint, path)
            assert status == 400, path
            assert payload["kind"] == "bad_request"
            assert "Traceback" not in payload["error"]

    def test_oversized_content_length_is_413(self, endpoint):
        endpoint, _server = endpoint
        status, payload = self._get_error(
            endpoint, "/query?cuboid=A",
            headers={"Content-Length": str(10 * 1024 * 1024)})
        assert status == 413
        assert payload["kind"] == "too_large"

    def test_malformed_content_length_is_400(self, endpoint):
        endpoint, _server = endpoint
        status, payload = self._get_error(
            endpoint, "/query?cuboid=A", headers={"Content-Length": "banana"})
        assert status == 400

    def test_healthz_endpoint(self, endpoint):
        endpoint, server = endpoint
        status, payload = self._get_error(endpoint, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["breaker"] == "closed"
        assert payload["max_pending"] == server.gate.limit

    def test_deadline_ms_param_maps_to_504(self, endpoint):
        endpoint, server = endpoint

        real_query = server.store.query

        def slow_query(cuboid, minsup=1):
            time.sleep(1.0)
            return real_query(cuboid, minsup=minsup)

        server.store.query = slow_query
        server.cache = QueryCache(0)
        try:
            status, payload = self._get_error(
                endpoint, "/query?cuboid=A&deadline_ms=50")
            assert status == 504
            assert payload["kind"] == "deadline"
        finally:
            server.store.query = real_query

    def test_overload_maps_to_429(self, store):
        release = threading.Event()

        class BlockingStore:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def query(self, cuboid, minsup=1):
                release.wait(10.0)
                return self._inner.query(cuboid, minsup=minsup)

        server = CubeServer(BlockingStore(store), max_workers=1,
                            max_pending=64, cache_size=0)
        server.gate = AdmissionGate(2)
        endpoint = server.serve_http(port=0)
        import urllib.error
        try:
            pool = ThreadPoolExecutor(max_workers=4)
            blockers = [pool.submit(urlopen, endpoint.url + "/query?cuboid=A")
                        for _ in range(2)]
            deadline = time.perf_counter() + 5.0
            while (server.gate.stats()["pending"] < 2
                   and time.perf_counter() < deadline):
                time.sleep(0.01)
            try:
                with urlopen(endpoint.url + "/query?cuboid=A") as r:
                    raise AssertionError("expected 429, got %d" % r.status)
            except urllib.error.HTTPError as error:
                assert error.code == 429
                assert json.loads(error.read())["kind"] == "overloaded"
            release.set()
            for blocker in blockers:
                blocker.result(timeout=10.0).close()
            pool.shutdown(wait=True)
        finally:
            release.set()
            server.close()


class TestQueryCacheWatermark:
    """The check-then-act race: an insert computed before an append must
    never land in the cache after it."""

    def test_put_below_watermark_is_refused(self):
        cache = QueryCache(capacity=4)
        cache.advance(3)
        cache.put(("A",), 1, 2, "stale")
        assert len(cache) == 0
        assert cache.stats()["stale_rejections"] == 1
        cache.put(("A",), 1, 3, "fresh")
        assert cache.get(("A",), 1, 3) == "fresh"

    def test_advance_is_monotonic(self):
        cache = QueryCache(capacity=4)
        cache.advance(5)
        cache.advance(2)  # never lowers
        assert cache.stats()["watermark"] == 5

    def test_never_overwrites_a_fresher_entry(self):
        cache = QueryCache(capacity=4)
        cache.put(("A",), 1, 4, "new")
        cache.put(("A",), 1, 3, "old")  # late writer with an older answer
        assert cache.get(("A",), 1, 4) == "new"
        assert cache.stats()["stale_rejections"] == 1

    def test_barrier_forced_interleaving(self):
        # Deterministically force the race: a reader captures generation
        # 1, an append advances the watermark to 2 *while the reader's
        # answer is still in flight*, then the reader inserts.  The
        # stale insert must vanish, under both the old and the new key.
        cache = QueryCache(capacity=8)
        cache.advance(1)
        barrier = threading.Barrier(2)

        def late_writer():
            generation = 1  # read before the append committed
            barrier.wait()  # ... append happens here ...
            barrier.wait()
            cache.put(("A", "B"), 2, generation, {"cell": "stale"})

        thread = threading.Thread(target=late_writer)
        thread.start()
        barrier.wait()
        cache.advance(2)  # the append commits and bumps the watermark
        barrier.wait()
        thread.join(timeout=5.0)
        assert cache.get(("A", "B"), 2, 1) is None
        assert cache.get(("A", "B"), 2, 2) is None
        assert len(cache) == 0
        assert cache.stats()["stale_rejections"] == 1


class TestGenerationVerifiedReads:
    """The server's double-read protocol: answers carry the generation
    they were verified against, and an append mid-query forces a retry
    rather than a mislabeled or cache-poisoning answer."""

    def test_answers_carry_generation(self, store):
        server = CubeServer(store)
        try:
            assert server.query(("A",), minsup=2).generation == 1
            from repro.data import Relation
            server.append(Relation(store.dims, [(0, 0, 0, 0)], [1.0]))
            answer = server.query(("A",), minsup=2)
            assert answer.generation == 2
            assert server.cache.stats()["watermark"] == 2
        finally:
            server.close()

    def test_append_during_query_retries_to_new_generation(
            self, small_skewed, store):
        from repro.data import Relation

        server = CubeServer(store, cache_size=8)
        entered = threading.Event()
        release = threading.Event()
        original = store.query
        first = []

        def slow_query(cuboid, minsup=1):
            result = original(cuboid, minsup=minsup)
            if not first:  # only the first call blocks
                first.append(1)
                entered.set()
                release.wait(10.0)
            return result

        store.query = slow_query
        delta = Relation(store.dims, [(0, 0, 0, 0), (1, 1, 1, 1)],
                         [5.0, 7.0])
        merged_rows = list(small_skewed.rows) + list(delta.rows)
        merged = Relation(store.dims, merged_rows,
                          list(small_skewed.measures) + [5.0, 7.0])
        try:
            with ThreadPoolExecutor(max_workers=1) as pool:
                future = pool.submit(server.query, ("A", "B"), 2)
                assert entered.wait(10.0)
                server.append(delta)  # lands while the query is in flight
                release.set()
                answer = future.result(timeout=10.0)
            # The in-flight query was re-verified: it answers the *new*
            # generation with the *new* data, not a stale hybrid.
            assert answer.generation == 2
            assert answer.cells == oracle(merged, ("A", "B"), 2)
            # ... and the cache holds nothing stale.
            hit = server.cache.get(server.store.canonical(("A", "B")),
                                   2, 2)
            assert hit is None or hit == answer.cells
        finally:
            store.query = original
            server.close()

    def test_iceberg_share_is_one_generation(self, store, small_skewed):
        server = CubeServer(store)
        try:
            answer = server.iceberg(minsup=3)
            assert answer.generation == 1
            assert set(answer.cuboids) == set(store.owned_cuboids())
            for cuboid, cells in answer.cuboids.items():
                assert cells == oracle(small_skewed, cuboid, 3), cuboid
        finally:
            server.close()


class TestClusterHttpSurface:
    """The endpoint additions the router rides on: enriched /healthz,
    GET /cube and POST /append."""

    @pytest.fixture
    def endpoint(self, store):
        server = CubeServer(store, max_workers=4)
        endpoint = server.serve_http(port=0)
        yield endpoint, server
        server.close()

    def _get(self, endpoint, path):
        with urlopen(endpoint.url + path) as response:
            return response.status, json.loads(response.read())

    def test_healthz_reports_generation_verify_and_shard(self, endpoint):
        endpoint, server = endpoint
        _status, payload = self._get(endpoint, "/healthz")
        assert payload["generation"] == server.store.generation
        assert payload["verify"] == "off"  # freshly built, never verified
        assert payload["shard"] is None  # monolithic store
        assert tuple(payload["dims"]) == server.store.dims
        assert payload["leaves"] == len(server.store.leaves)
        assert payload["breaker"] == "closed"

    def test_healthz_reports_open_verify_mode(self, store, tmp_path):
        reopened = CubeStore.open(store.directory, verify="full")
        server = CubeServer(reopened)
        try:
            assert server.health()["verify"] == "full"
        finally:
            server.close()
            reopened.close()

    def test_healthz_names_the_shard(self, small_skewed, tmp_path):
        store = CubeStore.build(small_skewed, tmp_path / "sharded",
                                backend="local", shard=(1, 2))
        server = CubeServer(store)
        try:
            assert server.health()["shard"] == {"index": 1, "of": 2}
        finally:
            server.close()
            store.close()

    def test_query_payload_carries_generation(self, endpoint):
        endpoint, _server = endpoint
        _status, payload = self._get(endpoint, "/query?cuboid=A&minsup=2")
        assert payload["generation"] == 1

    def test_cube_endpoint(self, small_skewed, endpoint):
        endpoint, server = endpoint
        status, payload = self._get(endpoint, "/cube?minsup=3")
        assert status == 200
        assert payload["generation"] == 1
        assert len(payload["cuboids"]) == len(server.store.owned_cuboids())
        for entry in payload["cuboids"]:
            cells = {tuple(e["cell"]): (e["count"], e["sum"])
                     for e in entry["cells"]}
            assert cells == oracle(small_skewed, tuple(entry["cuboid"]), 3)

    def test_post_append(self, small_skewed, endpoint):
        from urllib.request import Request

        endpoint, server = endpoint
        body = json.dumps({"dims": list(server.store.dims),
                           "rows": [[0, 0, 0, 0], [1, 1, 1, 1]],
                           "measures": [5.0, 7.0]}).encode()
        request = Request(endpoint.url + "/append", data=body,
                          headers={"Content-Type": "application/json"})
        with urlopen(request) as response:
            payload = json.loads(response.read())
        assert payload["generation"] == 2
        assert payload["rows"] == 2
        assert payload["total_rows"] == len(small_skewed) + 2
        _status, answer = self._get(endpoint, "/query?cuboid=A&minsup=2")
        assert answer["generation"] == 2

    def test_post_append_malformed_is_400(self, endpoint):
        import urllib.error
        from urllib.request import Request

        endpoint, _server = endpoint
        request = Request(endpoint.url + "/append", data=b"{not json",
                          headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urlopen(request)
        assert info.value.code == 400
        assert json.loads(info.value.read())["kind"] == "bad_request"

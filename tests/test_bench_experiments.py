"""Fast sanity tests for the experiment registry (full runs live in
``benchmarks/``; these check structure and the cheap experiments)."""

from repro.bench import ALL_ABLATIONS, ALL_EXPERIMENTS, ALL_EXTENSIONS
from repro.bench.experiments import (
    fig_4_7_recipe,
    table_1_1_features,
    table_5_1_task_array,
)


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        ids = {fn.__name__ for fn in ALL_EXPERIMENTS}
        expected = {
            "table_1_1_features",
            "fig_3_6_io_writing",
            "fig_4_1_load_balance",
            "fig_4_2_scalability",
            "fig_4_3_problem_size",
            "fig_4_4_dimensions",
            "fig_4_5_minsup",
            "fig_4_6_sparseness",
            "fig_4_7_recipe",
            "table_5_1_task_array",
            "sec_5_1_materialization",
            "fig_5_3_pol_scalability",
            "fig_5_4_pol_buffer",
        }
        assert ids == expected

    def test_ablations_and_extensions_registered(self):
        assert len(ALL_ABLATIONS) == 6
        assert len(ALL_EXTENSIONS) == 10

    def test_all_experiments_documented(self):
        for fn in ALL_EXPERIMENTS + ALL_ABLATIONS + ALL_EXTENSIONS:
            assert fn.__doc__, fn.__name__


class TestCheapExperiments:
    def test_table_1_1(self):
        result = table_1_1_features()
        assert result.passed
        assert len(result.rows) == 5

    def test_fig_4_7(self):
        result = fig_4_7_recipe()
        assert result.passed
        assert len(result.rows) == 6

    def test_table_5_1_larger_cluster(self):
        result = table_5_1_task_array(n_processors=6)
        assert result.passed
        assert len(result.rows) == 6
        assert len(result.rows[0]) == 7  # processor + 6 tasks

    def test_small_scale_sec_5_1(self):
        from repro.bench.experiments import sec_5_1_materialization

        result = sec_5_1_materialization(n_tuples=800, n_dims=4, n_processors=2)
        result.assert_checks()


class TestBenchmarkCoverage:
    def test_every_experiment_has_a_benchmark_file_and_vice_versa(self):
        import pathlib
        import re

        registry = {
            fn.__name__ for fn in ALL_EXPERIMENTS + ALL_ABLATIONS + ALL_EXTENSIONS
        }
        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        used = set()
        for path in bench_dir.glob("test_*.py"):
            for name in re.findall(r"from repro\.bench\.\w+ import (\w+)",
                                   path.read_text()):
                used.add(name)
        assert registry == used

"""Shared fixtures: small deterministic relations and the Gray et al.
SALES example used throughout Chapter 2 of the thesis."""

import pytest

from repro.data import from_raw_rows, uniform_relation, zipf_relation

#: Relation SALES from Figure 2.2 (Gray et al.), the thesis' running
#: example: 18 tuples over Model/Year/Color with a Sales measure.
SALES_ROWS = [
    ("Chevy", 1990, "red", 5),
    ("Chevy", 1990, "white", 87),
    ("Chevy", 1990, "blue", 62),
    ("Chevy", 1991, "red", 54),
    ("Chevy", 1991, "white", 95),
    ("Chevy", 1991, "blue", 49),
    ("Chevy", 1992, "red", 31),
    ("Chevy", 1992, "white", 54),
    ("Chevy", 1992, "blue", 71),
    ("Ford", 1990, "red", 64),
    ("Ford", 1990, "white", 62),
    ("Ford", 1990, "blue", 63),
    ("Ford", 1991, "red", 52),
    ("Ford", 1991, "white", 9),
    ("Ford", 1991, "blue", 55),
    ("Ford", 1992, "red", 27),
    ("Ford", 1992, "white", 62),
    ("Ford", 1992, "blue", 39),
]


@pytest.fixture
def sales():
    """The Figure 2.2 SALES relation, dictionary-encoded."""
    return from_raw_rows(("Model", "Year", "Color"), [list(r) for r in SALES_ROWS],
                         measure_index=3)


@pytest.fixture
def small_uniform():
    """A 300-tuple, 4-dimension uniform relation."""
    return uniform_relation(300, [4, 3, 5, 2], seed=42)


@pytest.fixture
def small_skewed():
    """A 400-tuple, 4-dimension zipf-skewed relation."""
    return zipf_relation(400, [8, 5, 6, 3], skew=1.0, seed=7)


@pytest.fixture
def example_relation(sales):
    """Table 2.1's R: the iceberg-query running example."""
    rows = [
        ["Sony 25in TV", "Seattle", "Joe", 700],
        ["JVC 21in TV", "Vancouver", "Fred", 400],
        ["Sony 25in TV", "Seattle", "Sally", 700],
        ["JVC 21in TV", "LA", "Sally", 400],
        ["Sony 25in TV", "Seattle", "Bob", 700],
        ["Panasonic Hi-Fi VCR", "Vancouver", "Tom", 250],
    ]
    return from_raw_rows(("Item", "Location", "Customer"), rows, measure_index=3)

"""Cluster specs, cost model, and the scheduling simulator."""

import pytest

from repro.cluster import (
    ETHERNET_100,
    MYRINET,
    PII_266,
    PIII_500,
    Cluster,
    ClusterSpec,
    CostModel,
    DiskSpec,
    TaskExecution,
    cluster1,
    cluster2,
    cluster3,
    homogeneous,
    paper_cluster,
    run_dynamic,
    run_static,
)
from repro.core.stats import OpStats
from repro.errors import ClusterError


class TestSpecs:
    def test_machine_speed_relative_to_reference(self):
        assert PIII_500.speed == 1.0
        assert 0.5 < PII_266.speed < 0.6

    def test_paper_clusters(self):
        assert len(cluster1()) == 8
        assert cluster1().machines[0] is PIII_500
        assert cluster2().machines[0] is PII_266
        assert cluster3().network is MYRINET
        full = paper_cluster()
        assert len(full) == 16
        assert full.machines[0] is PIII_500 and full.machines[-1] is PII_266

    def test_myrinet_roughly_3x_ethernet(self):
        assert 2.5 < (
            ETHERNET_100.transfer_seconds(10_000_000)
            / MYRINET.transfer_seconds(10_000_000)
        ) < 3.5

    def test_network_transfer_includes_latency(self):
        assert ETHERNET_100.transfer_seconds(0, messages=10) == pytest.approx(
            10 * ETHERNET_100.latency_s
        )

    def test_disk_write_charges_scatter(self):
        disk = DiskSpec()
        sequential = disk.write_seconds(1_000_000, switches=0)
        scattered = disk.write_seconds(1_000_000, switches=1000)
        assert scattered > sequential

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusterError):
            ClusterSpec([])


class TestCostModel:
    def test_cpu_seconds_scale_inversely_with_speed(self):
        model = CostModel()
        stats = OpStats()
        stats.add_scan(1_000_000)
        fast = model.cpu_seconds(stats, PIII_500)
        slow = model.cpu_seconds(stats, PII_266)
        assert slow == pytest.approx(fast / PII_266.speed)

    def test_empty_stats_cost_nothing(self):
        assert CostModel().cpu_seconds(OpStats(), PIII_500) == 0.0


def make_cluster(n=4):
    return Cluster(homogeneous(n), CostModel())


def execution(label, scan=1000, **kwargs):
    stats = OpStats()
    stats.add_scan(scan)
    return TaskExecution(label, stats, **kwargs)


class TestCharging:
    def test_charge_advances_clock_and_breakdown(self):
        cluster = make_cluster(1)
        proc = cluster.processors[0]
        entry = cluster.charge(
            proc,
            execution("t", scan=1_000_000, bytes_written=1_000_000, switches=10,
                      comm_bytes=500_000, comm_messages=2),
        )
        assert proc.clock == pytest.approx(proc.busy_time)
        assert proc.cpu_time > 0 and proc.io_time > 0 and proc.comm_time > 0
        assert entry.end > entry.start == 0.0

    def test_reset_clears_state(self):
        cluster = make_cluster(2)
        cluster.charge(cluster.processors[0], execution("t"))
        cluster.reset()
        assert all(p.clock == 0.0 for p in cluster.processors)


class TestStaticScheduling:
    def test_tasks_run_on_assigned_processors(self):
        cluster = make_cluster(2)
        result = run_static(
            cluster,
            [(0, "a"), (1, "b"), (0, "c")],
            lambda proc, task: execution(task),
        )
        assert cluster.processors[0].tasks_run == 2
        assert cluster.processors[1].tasks_run == 1
        assert [e.label for e in result.schedule] == ["a", "b", "c"]

    def test_out_of_range_processor_rejected(self):
        cluster = make_cluster(2)
        with pytest.raises(ClusterError):
            run_static(cluster, [(5, "a")], lambda p, t: execution(t))

    def test_makespan_is_slowest_processor(self):
        cluster = make_cluster(2)
        result = run_static(
            cluster,
            [(0, "big"), (1, "small")],
            lambda proc, task: execution(task, scan=10_000_000 if task == "big" else 10),
        )
        assert result.makespan == pytest.approx(cluster.processors[0].clock)
        assert result.load_imbalance() > 1.5


class TestDynamicScheduling:
    def test_demand_scheduling_balances_uneven_tasks(self):
        cluster = make_cluster(2)
        sizes = [9, 1, 1, 1, 1, 1, 1, 1, 1, 1]  # total 18, balanced split = 9/9
        tasks = list(range(len(sizes)))
        result = run_dynamic(
            cluster,
            tasks,
            lambda proc, pending: 0,  # policies return an index into pending
            lambda proc, task: execution(str(task), scan=sizes[task] * 100_000),
        )
        assert result.load_imbalance() < 1.2

    def test_policy_sees_worker_and_pending(self):
        cluster = make_cluster(2)
        seen = []

        def select(proc, pending):
            seen.append((proc.index, tuple(pending)))
            return pending[-1]  # legacy object-return contract still works

        run_dynamic(cluster, ["a", "b"], select,
                    lambda proc, task: execution(task))
        assert seen[0] == (0, ("a", "b"))

    def test_deterministic_given_same_inputs(self):
        def run_once():
            cluster = make_cluster(3)
            result = run_dynamic(
                cluster,
                list(range(12)),
                lambda proc, pending: 0,
                lambda proc, task: execution(str(task), scan=(task % 5 + 1) * 1000),
            )
            return [(e.label, e.processor) for e in result.schedule]

        assert run_once() == run_once()

    def test_heterogeneous_machines_get_less_work(self):
        cluster = Cluster(ClusterSpec([PIII_500, PII_266]), CostModel())
        result = run_dynamic(
            cluster,
            list(range(20)),
            lambda proc, pending: 0,
            lambda proc, task: execution(str(task), scan=100_000),
        )
        fast, slow = cluster.processors
        assert fast.tasks_run > slow.tasks_run
        assert result.makespan < 20 * CostModel().cpu_seconds(
            _scan_stats(100_000), PII_266
        )

    def test_out_of_range_index_rejected(self):
        cluster = make_cluster(2)
        with pytest.raises(ClusterError, match="outside pending range"):
            run_dynamic(cluster, ["a", "b"],
                        lambda proc, pending: len(pending),
                        lambda proc, task: execution(task))

    def test_unknown_task_object_rejected(self):
        cluster = make_cluster(2)
        with pytest.raises(ClusterError, match="not one of the"):
            run_dynamic(cluster, ["a", "b"],
                        lambda proc, pending: "not-a-task",
                        lambda proc, task: execution(task))


def _scan_stats(n):
    stats = OpStats()
    stats.add_scan(n)
    return stats


class TestSimulationResult:
    def test_time_breakdown_sums_processors(self):
        cluster = make_cluster(2)
        result = run_static(
            cluster,
            [(0, "a"), (1, "b")],
            lambda proc, task: execution(task, bytes_written=1000),
        )
        cpu, io, comm = result.time_breakdown()
        assert cpu == pytest.approx(sum(p.cpu_time for p in cluster.processors))
        assert io > 0

"""The shipped examples stay runnable (compile-check all; run the fast
ones end to end)."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def example_files():
    return sorted(EXAMPLES.glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in example_files()}
        assert "quickstart.py" in names
        assert len(names) >= 3

    @pytest.mark.parametrize("path", example_files(), ids=lambda p: p.name)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_retail_example_runs(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES / "retail_iceberg.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "tip of the iceberg" in completed.stdout

    def test_quickstart_runs(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "qualifying cells" in completed.stdout

"""Algorithm AHT: subset-collapse reuse and collision sensitivity."""

from repro.cluster import cluster1
from repro.core.naive import naive_iceberg_cube
from repro.data import dense_relation, uniform_relation
from repro.parallel import AHT
from repro.parallel.aht import SCRATCH, SUBSET_FIRST, SUBSET_PREV, _AhtWorkerState, choose_mode


class FakeState(_AhtWorkerState):
    def __init__(self, first_dims=None, prev_dims=None):
        super().__init__(writer=None)
        self.first_dims = first_dims
        self.first_table = object() if first_dims else None
        self.prev_dims = prev_dims
        self.prev_table = object() if prev_dims else None


class TestChooseMode:
    def test_no_state_is_scratch(self):
        assert choose_mode(("A",), None) == SCRATCH

    def test_prefix_not_special_just_subset(self):
        # Unlike ASL, AHT treats a prefix like any subset (Section 3.5.2).
        state = FakeState(first_dims=("A", "B", "C"), prev_dims=("A", "B", "C"))
        assert choose_mode(("A", "B"), state) == SUBSET_PREV

    def test_subset_of_first_fallback(self):
        state = FakeState(first_dims=("A", "C", "D"), prev_dims=("B", "C"))
        assert choose_mode(("A", "D"), state) == SUBSET_FIRST

    def test_scratch_when_no_subset(self):
        state = FakeState(first_dims=("A", "B"), prev_dims=("B", "C"))
        assert choose_mode(("D",), state) == SCRATCH


class TestExecution:
    def test_exact_result(self, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        run = AHT().run(small_skewed, minsup=2, cluster_spec=cluster1(4))
        assert run.result.equals(expected), run.result.diff(expected)

    def test_one_task_per_cuboid(self, small_uniform):
        run = AHT().run(small_uniform, minsup=1, cluster_spec=cluster1(2))
        assert len(run.simulation.schedule) == 2 ** len(small_uniform.dims) - 1

    def test_bucket_factor_changes_cost_not_result(self, small_skewed):
        tight = AHT(bucket_factor=0.05).run(small_skewed, minsup=2,
                                            cluster_spec=cluster1(2))
        roomy = AHT(bucket_factor=10.0).run(small_skewed, minsup=2,
                                            cluster_spec=cluster1(2))
        assert tight.result.equals(roomy.result)
        # Fewer buckets -> more collisions -> more simulated time.
        assert tight.makespan > roomy.makespan


class TestCollisionSensitivity:
    def test_sparse_hurts_more_than_dense(self):
        n = 1200
        dense = dense_relation(n, 4, cardinality=3, seed=1)
        sparse = uniform_relation(n, [60, 50, 40, 30], seed=1)
        dense_run = AHT().run(dense, minsup=2, cluster_spec=cluster1(4))
        sparse_run = AHT().run(sparse, minsup=2, cluster_spec=cluster1(4))
        # Normalize by a collision-free competitor to isolate AHT's
        # sparseness penalty.
        from repro.parallel import PT

        dense_pt = PT().run(dense, minsup=2, cluster_spec=cluster1(4))
        sparse_pt = PT().run(sparse, minsup=2, cluster_spec=cluster1(4))
        aht_penalty = sparse_run.makespan / dense_run.makespan
        pt_penalty = sparse_pt.makespan / dense_pt.makespan
        assert aht_penalty > pt_penalty

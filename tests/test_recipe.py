"""The Figure 4.7 recipe rules."""

from repro.data import dense_relation, uniform_relation
from repro.recipe import (
    RECIPE_ROWS,
    Workload,
    recipe_table,
    recommend,
    recommend_for,
)


class TestWorkload:
    def test_cardinality_product(self):
        w = Workload(1000, [4, 5, 10])
        assert w.cardinality_product == 200
        assert w.n_dims == 3

    def test_density_threshold(self):
        assert Workload(100000, [10] * 6).is_dense  # 1e6 cells
        assert not Workload(100000, [100] * 6).is_dense  # 1e12 cells

    def test_from_relation(self):
        rel = uniform_relation(500, [4, 6], seed=1)
        w = Workload.from_relation(rel)
        assert w.n_tuples == 500
        assert w.cardinalities == (4, 6)


class TestRecommendations:
    def test_online_wins_over_everything(self):
        w = Workload(10**6, [100] * 12, online=True, memory_constrained=True)
        assert recommend(w) == ("POL",)

    def test_memory_constrained_gets_bpp(self):
        assert recommend(Workload(10**6, [100] * 9, memory_constrained=True)) == ("BPP",)

    def test_high_dimensionality_gets_pt_alone(self):
        assert recommend(Workload(10**5, [20] * 13)) == ("PT",)

    def test_dense_cube_gets_hash_or_skiplist(self):
        picks = recommend(Workload(10**5, [4] * 6))
        assert set(picks) == {"ASL", "AHT"}

    def test_dense_low_dim_prefers_aht(self):
        picks = recommend(Workload(10**5, [4] * 3))
        assert picks[0] == "AHT"

    def test_small_dimensionality_everything_works(self):
        picks = recommend(Workload(10**5, [1000] * 4))
        assert "RP" in picks and "PT" in picks

    def test_default_sparse_case_is_pt_first(self):
        picks = recommend(Workload(10**5, [100] * 9))
        assert picks[0] == "PT"

    def test_recommend_for_relation(self):
        rel = dense_relation(2000, 4, cardinality=3, seed=1)
        picks = recommend_for(rel)
        assert picks[0] in ("ASL", "AHT")


class TestTable:
    def test_table_rows_match_constant(self):
        assert recipe_table() == list(RECIPE_ROWS)

    def test_table_mentions_all_algorithms(self):
        mentioned = {a for _s, algos in recipe_table() for a in algos}
        assert mentioned == {"PT", "ASL", "RP", "BPP", "AHT", "POL"}

"""Gray et al.'s aggregate classification and merge correctness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import (
    ALGEBRAIC,
    DISTRIBUTIVE,
    HOLISTIC,
    from_count_sum,
    get_aggregate,
)
from repro.errors import SchemaError

MEASURES = st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50)


def apply(func, values):
    state = func.initial()
    for v in values:
        state = func.step(state, v)
    return func.final(state)


class TestClassification:
    def test_kinds_match_the_paper(self):
        assert get_aggregate("count").kind == DISTRIBUTIVE
        assert get_aggregate("sum").kind == DISTRIBUTIVE
        assert get_aggregate("min").kind == DISTRIBUTIVE
        assert get_aggregate("max").kind == DISTRIBUTIVE
        assert get_aggregate("avg").kind == ALGEBRAIC
        assert get_aggregate("median").kind == HOLISTIC

    def test_mergeable_excludes_holistic(self):
        assert get_aggregate("sum").mergeable
        assert get_aggregate("avg").mergeable
        assert not get_aggregate("median").mergeable

    def test_lookup_is_case_insensitive(self):
        assert get_aggregate("SUM").name == "sum"

    def test_unknown_aggregate_raises(self):
        with pytest.raises(SchemaError):
            get_aggregate("mode")


class TestValues:
    def test_basic_values(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        assert apply(get_aggregate("count"), values) == 5
        assert apply(get_aggregate("sum"), values) == 14.0
        assert apply(get_aggregate("min"), values) == 1.0
        assert apply(get_aggregate("max"), values) == 5.0
        assert apply(get_aggregate("avg"), values) == 14.0 / 5

    def test_median_odd_and_even(self):
        assert apply(get_aggregate("median"), [5.0, 1.0, 3.0]) == 3.0
        assert apply(get_aggregate("median"), [4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_empty_finals(self):
        assert apply(get_aggregate("min"), []) is None
        assert apply(get_aggregate("avg"), []) is None
        assert apply(get_aggregate("median"), []) is None


class TestMergeProperty:
    """F(T) == G(F(S1), F(S2)) — the distributive/algebraic law the
    partitioned algorithms (BPP, POL) rely on."""

    @pytest.mark.parametrize("name", ["count", "sum", "min", "max", "avg"])
    @given(values=MEASURES, split=st.integers(0, 49))
    @settings(max_examples=40, deadline=None)
    def test_split_merge_equals_whole(self, name, values, split):
        func = get_aggregate(name)
        split = min(split, len(values))
        left_state = func.initial()
        for v in values[:split]:
            left_state = func.step(left_state, v)
        right_state = func.initial()
        for v in values[split:]:
            right_state = func.step(right_state, v)
        merged = func.final(func.merge(left_state, right_state))
        whole = apply(func, values)
        if isinstance(merged, float) and isinstance(whole, float):
            assert merged == pytest.approx(whole, rel=1e-9, abs=1e-6)
        else:
            assert merged == whole


class TestFromCountSum:
    def test_derivable_aggregates(self):
        assert from_count_sum("count", 4, 10.0) == 4
        assert from_count_sum("sum", 4, 10.0) == 10.0
        assert from_count_sum("avg", 4, 10.0) == 2.5
        assert from_count_sum("avg", 0, 0.0) is None

    def test_non_derivable_rejected(self):
        with pytest.raises(SchemaError):
            from_count_sum("min", 4, 10.0)

"""Cross-cutting correctness: all five parallel algorithms agree with
the oracle on arbitrary inputs, cluster shapes and thresholds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import cluster1, paper_cluster
from repro.core.naive import naive_iceberg_cube
from repro.data import Relation, uniform_relation
from repro.errors import PlanError
from repro.parallel import AHT, ASL, BPP, PT, RP, ALGORITHMS, features_table

ALGO_CLASSES = [RP, BPP, ASL, PT, AHT]

RELATIONS = st.builds(
    lambda rows: Relation(("A", "B", "C"), rows, [1.0] * len(rows)),
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
             max_size=50),
)


@pytest.mark.parametrize("algo_cls", ALGO_CLASSES)
class TestExactness:
    @pytest.mark.parametrize("minsup", [1, 2, 6])
    def test_matches_naive_on_skewed_data(self, algo_cls, minsup, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=minsup)
        run = algo_cls().run(small_skewed, minsup=minsup, cluster_spec=cluster1(4))
        assert run.result.equals(expected), run.result.diff(expected)

    def test_matches_naive_on_sales(self, algo_cls, sales):
        expected = naive_iceberg_cube(sales, minsup=2)
        run = algo_cls().run(sales, minsup=2, cluster_spec=cluster1(3))
        assert run.result.equals(expected), run.result.diff(expected)

    @pytest.mark.parametrize("n_processors", [1, 2, 5, 16])
    def test_any_cluster_size(self, algo_cls, n_processors, small_uniform):
        expected = naive_iceberg_cube(small_uniform, minsup=2)
        run = algo_cls().run(small_uniform, minsup=2,
                             cluster_spec=cluster1(n_processors))
        assert run.result.equals(expected)

    def test_heterogeneous_cluster(self, algo_cls, small_uniform):
        expected = naive_iceberg_cube(small_uniform, minsup=2)
        run = algo_cls().run(small_uniform, minsup=2, cluster_spec=paper_cluster(6))
        assert run.result.equals(expected)

    def test_single_dimension(self, algo_cls):
        rel = uniform_relation(100, [5], seed=1)
        expected = naive_iceberg_cube(rel, minsup=2)
        run = algo_cls().run(rel, minsup=2, cluster_spec=cluster1(2))
        assert run.result.equals(expected)

    def test_cardinality_one_dimension(self, algo_cls):
        # The thesis' "Gender" pathology: a dimension that cannot be
        # usefully partitioned.
        rel = uniform_relation(80, [1, 4, 3], seed=2)
        expected = naive_iceberg_cube(rel, minsup=2)
        run = algo_cls().run(rel, minsup=2, cluster_spec=cluster1(4))
        assert run.result.equals(expected)

    def test_minsup_above_input_size(self, algo_cls, small_uniform):
        run = algo_cls().run(small_uniform, minsup=len(small_uniform) + 1,
                             cluster_spec=cluster1(2))
        assert run.result.total_cells() == 0

    def test_empty_relation(self, algo_cls):
        rel = Relation(("A", "B"), [])
        run = algo_cls().run(rel, minsup=1, cluster_spec=cluster1(2))
        assert run.result.total_cells() == 0

    def test_dims_subset_of_schema(self, algo_cls, small_uniform):
        expected = naive_iceberg_cube(small_uniform, dims=("B", "D"), minsup=2)
        run = algo_cls().run(small_uniform, dims=("B", "D"), minsup=2,
                             cluster_spec=cluster1(2))
        assert run.result.equals(expected)

    def test_invalid_minsup_rejected(self, algo_cls, small_uniform):
        with pytest.raises(PlanError):
            algo_cls().run(small_uniform, minsup=0)

    def test_no_dimensions_rejected(self, algo_cls, small_uniform):
        with pytest.raises(PlanError):
            algo_cls().run(small_uniform, dims=())

    def test_measures_aggregated_not_counted(self, algo_cls):
        rel = Relation(("A",), [(0,), (0,), (1,)], [1.5, 2.5, 10.0])
        run = algo_cls().run(rel, minsup=1, cluster_spec=cluster1(2))
        assert run.result.cuboid(("A",)) == {(0,): (2, 4.0), (1,): (1, 10.0)}


class TestAgreementProperty:
    @given(RELATIONS, st.integers(1, 3), st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_all_algorithms_agree(self, relation, minsup, n_processors):
        expected = naive_iceberg_cube(relation, minsup=minsup)
        for algo_cls in ALGO_CLASSES:
            run = algo_cls().run(relation, minsup=minsup,
                                 cluster_spec=cluster1(n_processors))
            assert run.result.equals(expected), (algo_cls.name,
                                                 run.result.diff(expected))


class TestDeterminism:
    @pytest.mark.parametrize("algo_cls", ALGO_CLASSES)
    def test_repeated_runs_identical(self, algo_cls, small_skewed):
        a = algo_cls().run(small_skewed, minsup=2, cluster_spec=cluster1(4))
        b = algo_cls().run(small_skewed, minsup=2, cluster_spec=cluster1(4))
        assert a.makespan == b.makespan
        assert a.result.equals(b.result)
        assert [e.label for e in a.simulation.schedule] == [
            e.label for e in b.simulation.schedule
        ]


class TestFeaturesTable:
    def test_five_algorithms_listed(self):
        rows = features_table()
        assert [r[0] for r in rows] == ["RP", "BPP", "ASL", "PT", "AHT"]
        assert len(ALGORITHMS) == 5

    def test_only_bpp_partitions_data(self):
        rows = {r[0]: r[1:] for r in features_table()}
        assert rows["BPP"][3] == "partitioned"
        for name in ("RP", "ASL", "PT", "AHT"):
            assert rows[name][3] == "replicated"

    def test_only_rp_writes_depth_first(self):
        rows = {r[0]: r[1:] for r in features_table()}
        assert rows["RP"][0] == "depth-first"
        assert rows["BPP"][0] == rows["ASL"][0] == rows["PT"][0] == "breadth-first"

"""Cluster chaos smoke test: node loss under live fire (CI job).

One logical cube served by 3 shards x 2 replicas — each replica a REAL
``repro-cube serve`` subprocess on its own copy of its shard store —
fronted by an in-process :class:`CubeRouter`.  The acceptance criteria
of the sharded serving tier, asserted end-to-end:

1. **Flood** — 500 Zipf-weighted iceberg queries (plus periodic
   whole-cube fan-outs) stream through the router from 8 threads.
2. **Chaos** — mid-flood, one replica is SIGKILLed (a node loss, not a
   clean shutdown) and a row delta is appended *through the router*
   concurrently with the reads.
3. **Zero wrong answers** — every response is validated against the
   oracle for the generation it reports: generation 1 answers must
   match the base relation, generation 2 answers the appended one.
   A response mixing the two generations has no matching oracle and
   fails the run.
4. **Failover is observable** — the router's metrics must show
   failovers > 0 and every query answered despite the kill.
5. **Honest partial degradation** — after the dead replica's sibling is
   also killed, queries owned by that shard must raise a structured
   :class:`ShardUnavailableError` naming it (HTTP 503 through the
   router's endpoint), while the surviving shards keep answering.

Run:  PYTHONPATH=src python tests/smoke_cluster.py
"""

import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import urllib.error
from concurrent.futures import ThreadPoolExecutor
from urllib.request import urlopen

from repro.core.naive import naive_cuboid
from repro.data import Relation, zipf_relation
from repro.errors import GenerationSkewError, ShardUnavailableError
from repro.lattice.lattice import CubeLattice
from repro.serve import CubeRouter, CubeStore

DIMS = ("A", "B", "C", "D")
N_SHARDS, N_REPLICAS = 3, 2
N_QUERIES = 500
SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def build_oracles(relations):
    """``{generation: {(cuboid, minsup): cells}}`` for every cuboid."""
    lattice = CubeLattice(DIMS)
    cuboids = list(lattice.cuboids(include_all=False)) + [()]
    oracles = {}
    for generation, relation in relations.items():
        table = {}
        for cuboid in cuboids:
            base = naive_cuboid(relation, cuboid)
            for minsup in (1, 2, 3, 4):
                table[(cuboid, minsup)] = {
                    cell: agg for cell, agg in base.items()
                    if agg[0] >= minsup
                }
        oracles[generation] = table
    return oracles


def spawn_replica(directory, shard):
    """Start one real ``repro-cube serve`` process; returns (proc, url)."""
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", directory,
         "--shard", "%d/%d" % (shard, N_SHARDS), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    for _ in range(40):
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                "replica died during startup (shard %d)" % shard)
        if line.startswith("listening on "):
            url = line.split()[2]
            return proc, url
    raise AssertionError("replica never reported its URL")


def main():
    root = tempfile.mkdtemp(prefix="cluster-chaos-")
    base = zipf_relation(600, dims=DIMS, cardinalities=(4, 5, 6, 7),
                         skew=1.0, seed=23)
    delta = Relation(DIMS, [(0, 0, 0, 0), (1, 1, 1, 1), (2, 2, 2, 2)],
                     [5.0, 7.0, 9.0])
    merged = Relation(DIMS, list(base.rows) + list(delta.rows),
                      list(base.measures) + list(delta.measures))
    oracles = build_oracles({1: base, 2: merged})

    # -- build shard stores, one private copy per replica ---------------
    processes, urls = {}, []
    for shard in range(N_SHARDS):
        built = os.path.join(root, "build-%d" % shard)
        CubeStore.build(base, built, backend="local",
                        shard=(shard, N_SHARDS)).close()
        replica_urls = []
        for replica in range(N_REPLICAS):
            directory = os.path.join(root, "shard-%d-r%d" % (shard, replica))
            shutil.copytree(built, directory)
            proc, url = spawn_replica(directory, shard)
            processes[(shard, replica)] = proc
            replica_urls.append(url)
        urls.append(replica_urls)
    print("cluster up: %d shards x %d replicas (pids %s)"
          % (N_SHARDS, N_REPLICAS,
             sorted(p.pid for p in processes.values())))

    router = CubeRouter(urls, timeout_s=10.0)
    lattice = CubeLattice(DIMS)
    cuboids = list(lattice.cuboids(include_all=False)) + [()]
    rng = random.Random(17)
    # Zipf-ish weights: low-index cuboids dominate, like a real workload.
    weights = [1.0 / (rank + 1) for rank in range(len(cuboids))]

    victim_shard = router.shard_for(("A",))
    kill_at, append_at = N_QUERIES // 4, N_QUERIES // 2
    issued = threading.Semaphore(0)
    wrong = []
    skew_retries = [0]
    generations_seen = set()

    def one_query(i):
        cuboid = rng.choices(cuboids, weights)[0]
        minsup = rng.randint(1, 4)
        if i % 61 == 0:
            # Periodic whole-cube fan-out: the generation-pinning path.
            try:
                answer = router.cube(minsup=minsup)
            except GenerationSkewError:
                skew_retries[0] += 1
                answer = router.cube(minsup=minsup)  # converges post-append
            generations_seen.add(answer.generation)
            table = oracles[answer.generation]
            for sub, cells in answer.cuboids.items():
                if cells != table[(sub, minsup)]:
                    wrong.append(("cube", sub, minsup, answer.generation))
        else:
            answer = router.query(cuboid, minsup=minsup)
            generations_seen.add(answer.generation)
            if answer.cells != oracles[answer.generation][(cuboid, minsup)]:
                wrong.append(("query", cuboid, minsup, answer.generation))
        issued.release()

    def chaos():
        for _ in range(kill_at):
            issued.acquire()
        victim = processes[(victim_shard, 0)]
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait()
        print("chaos: SIGKILLed replica 0 of shard %d (pid %d) mid-flood"
              % (victim_shard, victim.pid))
        for _ in range(append_at - kill_at):
            issued.acquire()
        summary = router.append(delta)
        print("chaos: appended %d rows through the router (%d/%d replicas, "
              "dead one unreachable)" % (summary["rows"], summary["applied"],
                                         summary["replicas"]))

    chaos_thread = threading.Thread(target=chaos)
    chaos_thread.start()
    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(one_query, range(N_QUERIES)))
    chaos_thread.join()

    assert not wrong, "WRONG ANSWERS: %r" % wrong[:5]
    assert generations_seen <= {1, 2}, generations_seen
    assert 2 in generations_seen, "append never became visible"
    metrics = router.registry.to_prometheus()
    failovers = sum(
        float(line.rsplit(" ", 1)[1])
        for line in metrics.splitlines()
        if line.startswith("repro_router_failovers_total{"))
    assert failovers > 0, "kill never exercised failover:\n%s" % metrics
    print("flood: %d queries all oracle-exact across generations %s "
          "(%d failovers, %d cube skew retries)"
          % (N_QUERIES, sorted(generations_seen), int(failovers),
             skew_retries[0]))

    # -- whole-shard loss: honest, structured, partial -------------------
    survivor = processes[(victim_shard, 1)]
    os.kill(survivor.pid, signal.SIGKILL)
    survivor.wait()
    try:
        router.query(("A",), minsup=2)
        raise AssertionError("whole shard down but the query was answered")
    except ShardUnavailableError as exc:
        assert exc.shard == victim_shard, exc
    other = next(c for c in cuboids
                 if c and router.shard_for(c) != victim_shard)
    answer = router.query(other, minsup=2)
    assert answer.cells == oracles[2][(other, 2)]

    endpoint = router.serve_http()
    try:
        urlopen(endpoint.url + "/query?cuboid=A&minsup=2")
        raise AssertionError("router endpoint invented an answer")
    except urllib.error.HTTPError as error:
        assert error.code == 503, error.code
        detail = json.loads(error.read())
        assert detail["kind"] == "shard_unavailable", detail
        assert detail["shard"] == victim_shard, detail
    health = router.health()
    assert health["status"] == "degraded"
    assert health["degraded_shards"] == [victim_shard]
    print("shard loss: shard %d answered structured 503s, siblings kept "
          "serving, health=degraded" % victim_shard)

    router.close()
    for proc in processes.values():
        if proc.poll() is None:
            proc.terminate()
            proc.wait()
    shutil.rmtree(root, ignore_errors=True)
    print("CLUSTER CHAOS SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""End-to-end flows a downstream user would actually run."""

import pytest

from repro import (
    POL,
    LeafMaterialization,
    cluster1,
    cluster3,
    iceberg_cube,
    iceberg_query,
    load_csv,
    naive_iceberg_cube,
    recommend_for,
    save_csv,
    weather_relation,
)


class TestWeatherEndToEnd:
    @pytest.fixture(scope="class")
    def weather(self):
        return weather_relation(1500, dims=("precip_code", "hour", "weather_change",
                                            "wind_speed_class"))

    def test_cube_with_recommended_algorithm(self, weather):
        picks = recommend_for(weather)
        run = iceberg_cube(weather, minsup=2, algorithm=picks[0].lower(),
                           cluster_spec=cluster1(4))
        assert run.result.equals(naive_iceberg_cube(weather, minsup=2))
        assert run.makespan > 0

    def test_csv_round_trip_preserves_cube(self, weather, tmp_path):
        # Reloading re-encodes values in appearance order, so compare
        # cubes through the reloaded relation's decoder: cells decode to
        # the stringified original codes.
        path = tmp_path / "weather.csv"
        save_csv(weather, path)
        reloaded = load_csv(path)
        original = iceberg_cube(weather, minsup=2, cluster_spec=cluster1(2))
        again = iceberg_cube(reloaded, minsup=2, cluster_spec=cluster1(2))
        decoded = again.result.decoded(reloaded.encoder)
        for cuboid, cells in original.result.cuboids.items():
            expected = {
                tuple(str(code) for code in cell): agg for cell, agg in cells.items()
            }
            got = {
                cell: (count, pytest.approx(value))
                for cell, (count, value) in decoded[cuboid].items()
            }
            assert got == expected, cuboid

    def test_online_query_agrees_with_offline(self, weather):
        offline = iceberg_query(weather, ("precip_code", "hour"), minsup=2)
        online = POL(buffer_size=200).run(
            weather, dims=("precip_code", "hour"), minsup=2,
            cluster_spec=cluster3(4),
        )
        got = {cell: value for cell, (_count, value) in online.cells.items()}
        assert got.keys() == offline.keys()
        for cell, value in offline.items():
            assert got[cell] == pytest.approx(value)

    def test_materialize_then_requery_cheaper_threshold(self, weather):
        materialization = LeafMaterialization(weather, cluster_spec=cluster1(4))
        for minsup in (2, 3, 8):
            expected = naive_iceberg_cube(weather, minsup=minsup)
            assert materialization.query_cube(minsup).equals(expected)


class TestPublicApiSurface:
    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

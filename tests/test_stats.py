"""OpStats: the operation ledger."""

from repro.core.stats import OpStats


class TestOpStats:
    def test_sort_units_are_n_log_n(self):
        s = OpStats()
        s.add_sort(8)
        assert s.sort_units == 8 * 3  # 8 * log2(8)

    def test_sorting_one_or_zero_costs_nothing(self):
        s = OpStats()
        s.add_sort(1)
        s.add_sort(0)
        assert s.sort_units == 0

    def test_merge_accumulates_all_fields(self):
        a, b = OpStats(), OpStats()
        a.read_tuples = 5
        a.add_scan(10)
        b.add_groups(3)
        b.add_structure(7.5)
        b.partition_moves = 2
        a.merge(b)
        assert a.read_tuples == 5
        assert a.scan_tuples == 10
        assert a.groups == 3
        assert a.structure_units == 7.5
        assert a.partition_moves == 2

    def test_copy_is_independent(self):
        a = OpStats()
        a.add_scan(4)
        b = a.copy()
        b.add_scan(6)
        assert a.scan_tuples == 4
        assert b.scan_tuples == 10

    def test_total_units_sums_everything(self):
        s = OpStats()
        s.read_tuples = 1
        s.add_sort(2)
        s.add_scan(3)
        s.add_groups(4)
        s.add_structure(5)
        s.partition_moves = 6
        assert s.total_units() == 1 + 2 + 3 + 4 + 5 + 6

    def test_repr_mentions_fields(self):
        assert "sort" in repr(OpStats())

"""Small-surface coverage: reprs, defaults and module entry points."""

import subprocess
import sys

from repro.cluster import cluster1
from repro.core.result import CubeResult
from repro.data import uniform_relation
from repro.online import POL
from repro.parallel import PT


class TestReprs:
    def test_relation_repr(self, small_uniform):
        assert "Relation" in repr(small_uniform)
        assert "300" in repr(small_uniform)

    def test_cube_result_repr(self):
        r = CubeResult(("A",))
        r.add_cell(("A",), (0,), 1, 1.0)
        text = repr(r)
        assert "cells=1" in text

    def test_parallel_run_repr(self, small_uniform):
        run = PT().run(small_uniform, minsup=2, cluster_spec=cluster1(2))
        text = repr(run)
        assert "PT" in text and "cells" in text

    def test_online_run_and_snapshot_repr(self, small_uniform):
        run = POL(buffer_size=100).run(small_uniform, minsup=1,
                                       cluster_spec=cluster1(2))
        assert "OnlineRunResult" in repr(run)
        assert "OnlineSnapshot" in repr(run.snapshots[0])

    def test_threshold_reprs(self):
        from repro.core import AndThreshold, CountThreshold, SumThreshold

        assert "COUNT" in repr(CountThreshold(2))
        assert "SUM" in repr(SumThreshold(5))
        assert "AND" in repr(AndThreshold(2, SumThreshold(5)))

    def test_spec_reprs(self):
        from repro.cluster import ETHERNET_100, PIII_500

        assert "PIII-500" in repr(PIII_500)
        assert "ethernet" in repr(ETHERNET_100)
        assert "cluster1" in repr(cluster1())


class TestDefaults:
    def test_pol_defaults_to_all_dims_and_cluster1(self, small_uniform):
        run = POL(buffer_size=100).run(small_uniform, minsup=1)
        assert run.dims == small_uniform.dims
        assert len(run.simulation.processors) == 8

    def test_parallel_defaults_to_cluster1(self, small_uniform):
        run = PT().run(small_uniform, minsup=2)
        assert len(run.simulation.processors) == 8


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "bench"],
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0
        assert "fig_4_2_scalability" in completed.stdout

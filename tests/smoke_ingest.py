"""Ingestion chaos smoke test: exactly-once ingest under fire (CI job).

The durable-ingestion acceptance criteria, asserted end-to-end with real
processes and real SIGKILLs:

1. **Store crash matrix** — a writer process is SIGKILLed at every
   chaos point (mid-WAL-write before and after publish, mid-compaction
   before and after the journal commit); after each crash the store
   must recover to an oracle-exact state and client retries of the
   interrupted batch must be deduplicated, never double-counted.
2. **Flood** — 500 Zipf-weighted iceberg queries stream through a
   router fronting 2 WAL-enabled replica subprocesses while deltas are
   appended; every answer is validated against the oracle for the
   generation it reports.
3. **Chaos** — mid-flood one replica is SIGKILLed; appends keep landing
   on the survivor (retried, breaker-aware), and every batch is
   **deliberately re-sent twice** with its original batch id — the
   duplicated retries a crashing client would produce.
4. **Router restart** — the router is torn down mid-stream and a fresh
   one (no memory of what was delivered) re-sends every batch id; the
   replicas must acknowledge without re-applying.
5. **Anti-entropy repair** — the killed replica restarts stale; one
   health sweep must re-deliver its missed WAL batches from the
   survivor and converge both replicas to cell-exact equality.

Gate: zero lost rows, zero double-counted rows, zero wrong answers.

Run:  PYTHONPATH=src python tests/smoke_ingest.py
"""

import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from itertools import combinations

from repro.core.naive import naive_cuboid
from repro.data import Relation, zipf_relation
from repro.serve import CubeRouter, CubeStore, RetryPolicy

DIMS = ("A", "B", "C", "D")
N_QUERIES = 500
N_BATCHES = 3
SRC = os.path.join(os.path.dirname(__file__), "..", "src")

CRASH_CHILD = r"""
import os, sys
sys.path.insert(0, %(src)r)
from repro.data import Relation
from repro.serve import CubeStore

def delta(seed, n=6):
    rows = [((seed + i) %% 4, (seed * 3 + i) %% 5, (seed + i) %% 6,
             i %% 7) for i in range(n)]
    return Relation(("A", "B", "C", "D"), rows,
                    [float(seed + i) for i in range(n)])

store = CubeStore.open(%(store)r, wal=True, compact_after=10_000)
store.append(delta(1), batch_id="k1")
store.append(delta(2), batch_id="k2")
store.compact()
os._exit(3)  # only reached if the chaos point never fired
"""


def delta_batch(seed, n=6):
    rows = [((seed + i) % 4, (seed * 3 + i) % 5, (seed + i) % 6, i % 7)
            for i in range(n)]
    return Relation(DIMS, rows, [float(seed + i) for i in range(n)])


def merged(base, batches):
    rows, measures = list(base.rows), list(base.measures)
    for batch in batches:
        rows.extend(batch.rows)
        measures.extend(batch.measures)
    return Relation(DIMS, rows, measures)


def oracle(relation, cuboid, minsup):
    return {cell: agg for cell, agg in naive_cuboid(relation, cuboid).items()
            if agg[0] >= minsup}


def crash_matrix(root, base):
    """SIGKILL a writer at every chaos point; recovery must be exact."""
    everything = merged(base, [delta_batch(1), delta_batch(2)])
    for point in ("wal.pre_publish", "wal.post_publish",
                  "compact.staged", "compact.journalled"):
        directory = os.path.join(root, "crash-%s" % point.replace(".", "-"))
        CubeStore.build(base, directory, backend="local").close()
        env = dict(os.environ, PYTHONPATH=SRC,
                   REPRO_INGEST_CHAOS_KILL=point)
        child = subprocess.run(
            [sys.executable, "-c",
             CRASH_CHILD % {"src": SRC, "store": directory}],
            env=env, capture_output=True, timeout=120)
        assert child.returncode == -9, (
            "chaos point %s never fired: rc=%s\n%s"
            % (point, child.returncode, child.stderr.decode()))
        store = CubeStore.open(directory, wal=True)
        # the client retries both batches — exactly-once must hold
        first = store.append(delta_batch(1), batch_id="k1")
        second = store.append(delta_batch(2), batch_id="k2")
        store.compact()
        got = store.query(("A", "B"), 1)
        want = oracle(everything, ("A", "B"), 1)
        assert got == want, "crash at %s lost or double-counted rows" % point
        store.close()
        print("crash matrix: %-18s recovered exact (retry applied=%s,%s)"
              % (point, first.applied, second.applied))


def spawn_replica(directory, port=0):
    """Start one real ``repro-cube serve --wal`` process."""
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", directory,
         "--wal", "--compact-after", "4", "--port", str(port)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    for _ in range(40):
        line = proc.stdout.readline()
        if not line:
            raise AssertionError("replica died during startup")
        if line.startswith("listening on "):
            url = line.split()[2]
            return proc, url
    raise AssertionError("replica never reported its URL")


def main():
    root = tempfile.mkdtemp(prefix="ingest-chaos-")
    base = zipf_relation(500, dims=DIMS, cardinalities=(4, 5, 6, 7),
                         skew=1.0, seed=31)
    batches = [delta_batch(seed) for seed in range(3, 3 + N_BATCHES)]

    crash_matrix(root, base)

    # Per-generation oracles: generation g answered from base + the
    # first g-1 batches (queries are validated at whatever generation
    # the replica reports).
    population = [
        (cuboid, minsup)
        for size in (1, 2)
        for cuboid in combinations(DIMS, size)
        for minsup in (1, 2, 3)
    ]
    oracles = {}
    for generation in range(1, N_BATCHES + 2):
        relation = merged(base, batches[:generation - 1])
        oracles[generation] = {
            (cuboid, minsup): oracle(relation, cuboid, minsup)
            for cuboid, minsup in population
        }
    final = merged(base, batches)

    # -- replicated serving: 1 shard x 2 WAL replicas --------------------
    built = os.path.join(root, "base")
    CubeStore.build(base, built, backend="local").close()
    directories, processes, urls = [], [], []
    for replica in range(2):
        directory = os.path.join(root, "replica-%d" % replica)
        shutil.copytree(built, directory)
        proc, url = spawn_replica(directory)
        directories.append(directory)
        processes.append(proc)
        urls.append(url)
    victim_port = int(urls[0].rsplit(":", 1)[1])
    print("replicas up: %s (pids %s)" % (urls, [p.pid for p in processes]))

    router = CubeRouter([urls], timeout_s=10.0,
                        retry_policy=RetryPolicy(attempts=3, base_s=0.01,
                                                 cap_s=0.05))
    rng = random.Random(19)
    weights = [1.0 / (rank + 1) for rank in range(len(population))]
    issued = threading.Semaphore(0)
    wrong = []
    generations_seen = set()
    duplicates_acked = [0]

    def one_query(i):
        try:
            cuboid, minsup = rng.choices(population, weights)[0]
            answer = router.query(cuboid, minsup=minsup)
            generations_seen.add(answer.generation)
            expected = oracles.get(answer.generation, {}).get(
                (cuboid, minsup))
            if answer.cells != expected:
                wrong.append((cuboid, minsup, answer.generation))
        except Exception as exc:  # noqa: BLE001 - surfaced after the flood
            wrong.append(("query-error", repr(exc), i))
        finally:
            issued.release()

    def chaos():
        for _ in range(N_QUERIES // 4):
            issued.acquire()
        os.kill(processes[0].pid, signal.SIGKILL)
        processes[0].wait()
        print("chaos: SIGKILLed replica 0 (pid %d) mid-flood"
              % processes[0].pid)
        for _ in range(N_QUERIES // 4):
            issued.acquire()
        for index, batch in enumerate(batches):
            batch_id = "smoke-%d" % index
            summary = router.append(batch, batch_id=batch_id)
            assert summary["applied"] >= 1, summary
            # the duplicated retries a crashing client would produce
            for _ in range(2):
                retry = router.append(batch, batch_id=batch_id)
                assert retry["applied"] >= 1, retry
                assert retry["duplicates"] == retry["applied"], retry
                duplicates_acked[0] += retry["duplicates"]
        print("chaos: %d batches appended through the router, every one "
              "re-sent twice (%d duplicate acks, zero re-applies)"
              % (N_BATCHES, duplicates_acked[0]))

    chaos_thread = threading.Thread(target=chaos)
    chaos_thread.start()
    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(one_query, range(N_QUERIES)))
    chaos_thread.join()

    assert not wrong, "WRONG ANSWERS: %r" % wrong[:5]
    assert generations_seen <= set(oracles), generations_seen
    assert duplicates_acked[0] == 2 * N_BATCHES, duplicates_acked
    answer = router.query(("A",), minsup=1)
    assert answer.generation == N_BATCHES + 1, (
        "appends never became visible: generation %s" % answer.generation)
    assert answer.cells == oracles[N_BATCHES + 1][(("A",), 1)]
    print("flood: %d queries oracle-exact across generations %s"
          % (N_QUERIES, sorted(generations_seen)))

    # -- router killed mid-stream: a fresh one re-sends everything -------
    router.close()
    router = CubeRouter([urls], timeout_s=10.0,
                        retry_policy=RetryPolicy(attempts=3, base_s=0.01,
                                                 cap_s=0.05))
    for index, batch in enumerate(batches):
        retry = router.append(batch, batch_id="smoke-%d" % index)
        assert retry["duplicates"] == retry["applied"], retry
    print("router restart: fresh router re-sent all %d batch ids, every "
          "ack was a dedup" % N_BATCHES)

    # -- the dead replica restarts stale; anti-entropy repairs it --------
    proc, url = spawn_replica(directories[0], port=victim_port)
    processes[0] = proc
    assert url == urls[0], "replica restarted on the wrong port"
    snapshot = router.check_health()  # the sweep runs anti-entropy repair
    for _ in range(20):  # the replica may need a moment to warm up
        generations = [state.get("generation")
                       for state in snapshot.values()]
        if generations[0] == generations[1] == N_BATCHES + 1:
            break
        time.sleep(0.25)
        snapshot = router.check_health()
    generations = sorted(state.get("generation")
                         for state in snapshot.values())
    assert generations == [N_BATCHES + 1] * 2, (
        "anti-entropy never converged the replicas: %s" % generations)

    # both replicas must now answer the final oracle, cell-exact
    for cuboid, minsup in (("A",), 1), (("A", "B"), 2), (("C", "D"), 1):
        want = oracle(final, cuboid, minsup)
        for replica in range(2):
            answer = router.query(cuboid, minsup=minsup)
            assert answer.cells == want, (cuboid, minsup)
    want_cells = oracle(final, ("A",), 1)
    total = sum(count for count, _ in want_cells.values())
    got = router.query(("A",), minsup=1).cells
    got_total = sum(count for count, _ in got.values())
    assert got == want_cells and got_total == total, (
        "lost or double-counted rows: %s vs %s" % (got_total, total))
    print("anti-entropy: restarted replica repaired from sibling WAL, "
          "both at generation %d, totals exact (%d rows)"
          % (N_BATCHES + 1, total))

    router.close()
    for proc in processes:
        if proc.poll() is None:
            proc.terminate()
            proc.wait()
    shutil.rmtree(root, ignore_errors=True)
    print("INGEST CHAOS SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Skip list: sorted-map semantics, aggregation and the POL operations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.skiplist import MAX_LEVEL, SkipList

KEYS = st.tuples(st.integers(0, 6), st.integers(0, 6), st.integers(0, 6))


def build(pairs, seed=0):
    sl = SkipList(seed=seed)
    for key, measure in pairs:
        sl.insert(key, measure=measure)
    return sl


class TestBasics:
    def test_insert_returns_newness(self):
        sl = SkipList()
        assert sl.insert((1, 2), measure=5.0) is True
        assert sl.insert((1, 2), measure=3.0) is False
        assert len(sl) == 1
        assert sl.get((1, 2)) == (2, 8.0)

    def test_iteration_is_sorted(self):
        sl = build([((3,), 1), ((1,), 1), ((2,), 1), ((0,), 1)])
        assert [k for k, _c, _v in sl] == [(0,), (1,), (2,), (3,)]

    def test_contains_and_get_missing(self):
        sl = build([((1,), 1.0)])
        assert (1,) in sl
        assert (2,) not in sl
        assert sl.get((2,)) is None

    def test_weighted_insert(self):
        sl = SkipList()
        sl.insert((0,), measure=10.0, count=4)
        assert sl.get((0,)) == (4, 10.0)

    def test_counters_increase_with_work(self):
        sl = build([((i,), 1.0) for i in range(100)])
        assert sl.comparisons > 100

    def test_level_cap_respected(self):
        sl = build([((i,), 1.0) for i in range(500)])
        assert sl._level <= MAX_LEVEL


class TestCuboidOperations:
    def test_aggregate_prefix_groups_contiguously(self):
        sl = build([((0, 0), 1.0), ((0, 1), 2.0), ((1, 0), 3.0), ((1, 5), 4.0)])
        groups = list(sl.aggregate_prefix(1))
        assert groups == [((0,), 2, 3.0), ((1,), 2, 7.0)]

    def test_aggregate_prefix_full_width_is_identity(self):
        pairs = [((0, 1), 1.0), ((2, 2), 5.0)]
        sl = build(pairs)
        assert list(sl.aggregate_prefix(2)) == [((0, 1), 1, 1.0), ((2, 2), 1, 5.0)]

    def test_aggregate_prefix_empty(self):
        assert list(SkipList().aggregate_prefix(1)) == []

    def test_project_permutes_and_merges(self):
        sl = build([((0, 1), 1.0), ((1, 1), 2.0), ((2, 1), 4.0)])
        projected = sl.project((1,))
        assert projected.items() == [((1,), 3, 7.0)]

    def test_split_ranges_respects_boundaries(self):
        sl = build([((i,), float(i)) for i in range(6)])
        ranges = sl.split_ranges([(2,), (4,)])
        assert [[k for k, _c, _v in r] for r in ranges] == [
            [(0,), (1,)],
            [(2,), (3,)],
            [(4,), (5,)],
        ]

    def test_split_ranges_skips_empty_ranges(self):
        sl = build([((9,), 1.0)])
        ranges = sl.split_ranges([(2,), (4,)])
        assert [len(r) for r in ranges] == [0, 0, 1]

    def test_merge_accumulates(self):
        sl = build([((0,), 1.0)])
        sl.merge([((0,), 2, 5.0), ((1,), 1, 3.0)])
        assert sl.get((0,)) == (3, 6.0)
        assert sl.get((1,)) == (1, 3.0)


class TestProperties:
    @given(st.lists(st.tuples(KEYS, st.floats(-100, 100)), max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_behaves_like_a_sorted_aggregating_dict(self, pairs):
        sl = build(pairs, seed=13)
        expected = {}
        for key, measure in pairs:
            count, value = expected.get(key, (0, 0.0))
            expected[key] = (count + 1, value + measure)
        items = sl.items()
        assert [k for k, _c, _v in items] == sorted(expected)
        for key, count, value in items:
            assert count == expected[key][0]
            assert abs(value - expected[key][1]) < 1e-6

    @given(st.lists(KEYS, min_size=1, max_size=80), st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_prefix_aggregation_matches_dict_groupby(self, keys, width):
        sl = build([(k, 1.0) for k in keys], seed=3)
        expected = {}
        for key in keys:
            prefix = key[:width]
            count, value = expected.get(prefix, (0, 0.0))
            expected[prefix] = (count + 1, value + 1.0)
        got = {k: (c, v) for k, c, v in sl.aggregate_prefix(width)}
        assert got == expected

    @given(st.lists(KEYS, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_different_seeds_same_contents(self, keys):
        a = build([(k, 1.0) for k in keys], seed=1)
        b = build([(k, 1.0) for k in keys], seed=99)
        assert a.items() == b.items()

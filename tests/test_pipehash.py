"""PipeHash: smallest-parent plan and exact results."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import naive_iceberg_cube
from repro.core.pipehash import pipehash_iceberg_cube, plan_pipehash
from repro.core.pipesort import estimated_size
from repro.data import Relation


class TestPlan:
    def test_root_has_no_parent(self):
        plan = plan_pipehash(("A", "B", "C"), {d: 4 for d in "ABC"}, 100)
        assert plan[("A", "B", "C")] is None

    def test_children_choose_smallest_parent(self):
        cards = {"A": 2, "B": 100, "C": 3}
        plan = plan_pipehash(("A", "B", "C"), cards, 10000)
        # ("A",)'s candidate parents: AB (200) and AC (6) -> AC.
        assert plan[("A",)] == ("A", "C")

    def test_plan_edges_are_one_level(self):
        plan = plan_pipehash(("A", "B", "C", "D"), {d: 5 for d in "ABCD"}, 1000)
        for child, parent in plan.items():
            if parent is not None:
                assert len(parent) == len(child) + 1
                assert set(child) <= set(parent)
                assert estimated_size(parent, {d: 5 for d in "ABCD"}, 1000) <= min(
                    estimated_size(p, {d: 5 for d in "ABCD"}, 1000)
                    for p in plan
                    if len(p) == len(parent) and set(child) <= set(p)
                )


class TestExecution:
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    def test_matches_naive(self, small_skewed, minsup):
        expected = naive_iceberg_cube(small_skewed, minsup=minsup)
        got, _stats, _plan = pipehash_iceberg_cube(small_skewed, minsup=minsup)
        assert got.equals(expected), got.diff(expected)

    def test_sales_example(self, sales):
        got, _stats, _plan = pipehash_iceberg_cube(sales)
        assert got.equals(naive_iceberg_cube(sales))

    def test_no_sorting_at_all(self, small_uniform):
        _got, stats, _plan = pipehash_iceberg_cube(small_uniform)
        assert stats.sort_units == 0
        assert stats.structure_units > 0

    @given(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
                 max_size=50),
        st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_naive(self, rows, minsup):
        relation = Relation(("A", "B", "C"), rows, [1.0] * len(rows))
        expected = naive_iceberg_cube(relation, minsup=minsup)
        got, _stats, _plan = pipehash_iceberg_cube(relation, minsup=minsup)
        assert got.equals(expected)

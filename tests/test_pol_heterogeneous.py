"""POL on mixed hardware: barriers make slow nodes matter; offloading
and demand order soften the blow."""

import pytest

from repro.cluster import ClusterSpec, cluster1
from repro.cluster.spec import PII_266, PIII_500
from repro.core.naive import naive_cuboid
from repro.data import zipf_relation
from repro.online import POL


@pytest.fixture
def relation():
    return zipf_relation(4000, [15, 8, 5], skew=0.7, seed=31)


class TestHeterogeneousPol:
    def test_exact_on_mixed_hardware(self, relation):
        mixed = ClusterSpec([PIII_500, PII_266, PIII_500, PII_266])
        run = POL(buffer_size=250).run(relation, minsup=2, cluster_spec=mixed)
        expected = {
            cell: agg
            for cell, agg in naive_cuboid(relation, relation.dims).items()
            if agg[0] >= 2
        }
        got = {k: (c, pytest.approx(v)) for k, (c, v) in run.cells.items()}
        assert got == expected

    def test_step_barriers_make_slow_nodes_cost(self, relation):
        fast = POL(buffer_size=250).run(relation, minsup=2,
                                        cluster_spec=cluster1(4))
        mixed = POL(buffer_size=250).run(
            relation, minsup=2,
            cluster_spec=ClusterSpec([PIII_500, PIII_500, PII_266, PII_266]),
        )
        # The per-step barrier waits for the slowest node, so the mixed
        # cluster is slower than all-fast but still faster than the
        # worst case of every node being slow.
        assert mixed.makespan > fast.makespan
        all_slow = POL(buffer_size=250).run(
            relation, minsup=2, cluster_spec=ClusterSpec([PII_266] * 4)
        )
        assert mixed.makespan < all_slow.makespan
        assert mixed.cells == fast.cells == all_slow.cells

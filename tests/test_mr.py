"""The one-round MapReduce backend: planner, shuffle, engine, faults."""

import glob
import os

import pytest

from repro.cluster.faults import FaultPlan, NodeCrash
from repro.online.materialize import leaf_cuboids
from repro.core.naive import naive_iceberg_cube
from repro.core.thresholds import SumThreshold
from repro.data import Relation, zipf_relation
from repro.data.stream import stream_from_relation, zipf_stream
from repro.data.weather import _BY_NAME
from repro.errors import PlanError
from repro.mr import (
    MIN_MEMORY_BUDGET,
    mapreduce_iceberg_cube,
    mapreduce_materialize,
    plan_mapreduce,
)
from repro.serve import stable_shard_hash
from repro.serve.store import CubeStore, _leaf_filename

DIMS4 = ("d0", "d1", "d2", "d3")
CARDS4 = [8, 6, 5, 4]


def small_stream(n_rows=3_000, seed=7, split_rows=800):
    return zipf_stream(n_rows, CARDS4, skew=1.0, seed=seed, dims=DIMS4,
                       split_rows=split_rows)


def assert_same_cube(result, oracle, tolerance=1e-6):
    diff = result.diff(oracle, tolerance=tolerance, limit=5)
    assert not diff, diff


def leaf_bytes(directory, dims):
    """Map every leaf cuboid to its on-disk file bytes."""
    out = {}
    for leaf in leaf_cuboids(dims):
        path = os.path.join(directory, _leaf_filename(leaf))
        with open(path, "rb") as handle:
            out[leaf] = handle.read()
    return out


# ---------------------------------------------------------------- planner


def test_plan_covers_every_leaf():
    plan = plan_mapreduce(DIMS4, CARDS4, n_reducers=3)
    leaves = leaf_cuboids(DIMS4)
    assert sorted(plan.leaves) == sorted(leaves)
    assert len(plan.partition_of_leaf) == len(plan.leaves)
    assert set(plan.partition_of_leaf) == set(range(3))
    # order-k batching balances *estimated cells*, not leaf counts: the
    # heaviest leaf (the full-order one) must sit alone until lighter
    # partitions catch up, so every partition ends up used
    heavy = plan.leaves.index(DIMS4)
    light = [plan.partition_of_leaf[i] for i, leaf in enumerate(plan.leaves)
             if len(leaf) == 2]
    assert plan.partition_of_leaf[heavy] not in light


def test_plan_more_reducers_than_leaves():
    plan = plan_mapreduce(("a", "b"), [4, 4], n_reducers=16)
    assert plan.n_reducers == 16
    assert len(plan.leaves) == 2


def test_plan_rejects_keys_wider_than_63_bits():
    names = tuple(_BY_NAME)
    cards = [card for card, _skew in _BY_NAME.values()]
    with pytest.raises(PlanError) as err:
        plan_mapreduce(names, cards, n_reducers=4)
    message = str(err.value)
    assert "63" in message and "bit" in message


def test_memory_budget_floor(tmp_path):
    with pytest.raises(PlanError):
        mapreduce_materialize(small_stream(200), str(tmp_path / "s"),
                              workers=1, memory_budget=1024)


# ----------------------------------------------------------- cube oracle


@pytest.mark.parametrize("minsup", [1, 3, SumThreshold(150.0)],
                         ids=["count1", "count3", "sum150"])
def test_cube_matches_naive_oracle(minsup):
    stream = small_stream()
    result = mapreduce_iceberg_cube(stream, minsup=minsup, workers=1)
    oracle = naive_iceberg_cube(stream.materialize(), minsup=minsup)
    assert_same_cube(result, oracle)
    assert result.mr_stats.rows == stream.n_rows


def test_cube_respects_dim_projection():
    stream = small_stream(2_000)
    sub = ("d2", "d0", "d3")
    result = mapreduce_iceberg_cube(stream, dims=sub, minsup=2, workers=1)
    oracle = naive_iceberg_cube(stream.materialize(), dims=sub, minsup=2)
    assert_same_cube(result, oracle)


def test_sum_threshold_rejects_negative_measures():
    relation = Relation(("a", "b"), [(0, 1), (1, 0)], [5.0, -1.0])
    with pytest.raises(PlanError):
        mapreduce_iceberg_cube(relation, minsup=SumThreshold(1.0), workers=1)


def test_empty_input(tmp_path):
    stream = zipf_stream(0, [4, 4], dims=("a", "b"), seed=0)
    result = mapreduce_iceberg_cube(stream, minsup=1, workers=1)
    assert result.total_cells() == 0
    stores_dir = str(tmp_path / "empty")
    store = mapreduce_materialize(stream, stores_dir, workers=1)
    assert store.total_rows == 0
    reopened = CubeStore.open(stores_dir)
    assert reopened.total_rows == 0


# ------------------------------------------------------ store equivalence


def test_store_byte_identical_to_classic_build(tmp_path):
    relation = zipf_relation(4_000, CARDS4, skew=1.0, seed=11, dims=DIMS4)
    classic = CubeStore.build(relation, str(tmp_path / "classic"),
                              backend="local")
    mr = mapreduce_materialize(stream_from_relation(relation, split_rows=900),
                               str(tmp_path / "mr"), workers=1)
    assert mr.total_rows == classic.total_rows
    assert mr.total_measure == pytest.approx(classic.total_measure, abs=1e-9)
    assert leaf_bytes(str(tmp_path / "mr"), DIMS4) == \
        leaf_bytes(str(tmp_path / "classic"), DIMS4)


def test_starved_budget_spills_and_reproduces_exactly():
    stream = small_stream(12_000, split_rows=6_000)
    roomy = mapreduce_iceberg_cube(stream, minsup=2, workers=1)
    starved = mapreduce_iceberg_cube(stream, minsup=2, workers=1,
                                     memory_budget=MIN_MEMORY_BUDGET)
    assert_same_cube(starved, roomy, tolerance=0.0)
    assert starved.mr_stats.spills > roomy.mr_stats.spills
    assert starved.mr_stats.spill_bytes > 0
    assert starved.mr_stats.runs_merged >= starved.mr_stats.runs


def test_sharded_store_single_pass(tmp_path):
    stream = small_stream(2_500)
    stores = mapreduce_materialize(stream, str(tmp_path / "sharded"),
                                   workers=1, shards=3)
    assert [store.shard for store in stores] == [(i, 3) for i in range(3)]
    seen = set()
    for index, store in enumerate(stores):
        for leaf in store.leaves:
            assert stable_shard_hash(leaf) % 3 == index
            seen.add(leaf)
        assert store.total_rows == stream.n_rows
    assert seen == set(leaf_cuboids(DIMS4))


# -------------------------------------------------------------- faults


def _no_tmp_droppings(directory):
    strays = [path for path in glob.glob(os.path.join(directory, "**", "*"),
                                         recursive=True)
              if ".tmp." in os.path.basename(path)]
    assert not strays, strays


def test_map_worker_sigkill_mid_spill_recovers(tmp_path):
    relation = zipf_relation(4_000, CARDS4, skew=1.0, seed=23, dims=DIMS4)
    stream = stream_from_relation(relation, split_rows=500)  # 8 map tasks
    plain = mapreduce_materialize(stream, str(tmp_path / "plain"), workers=2,
                                  reducers=2, memory_budget=MIN_MEMORY_BUDGET)
    faults = FaultPlan(crashes=[NodeCrash(0, 0.0), NodeCrash(2, 0.0)], seed=3)
    faulty = mapreduce_materialize(stream, str(tmp_path / "faulty"), workers=2,
                                   reducers=2, memory_budget=MIN_MEMORY_BUDGET,
                                   fault_plan=faults, batch_timeout=30)
    log = faulty.mr_stats.map_recovery
    assert log.worker_crashes >= 1
    # the killed attempts left durable spill files behind; the sweep
    # must have collected them rather than let the merge read them
    assert faulty.mr_stats.orphan_files_swept > 0
    assert faulty.total_rows == plain.total_rows == 4_000
    assert leaf_bytes(str(tmp_path / "faulty"), DIMS4) == \
        leaf_bytes(str(tmp_path / "plain"), DIMS4)
    _no_tmp_droppings(str(tmp_path / "faulty"))


def test_reduce_worker_sigkill_mid_merge_recovers(tmp_path):
    relation = zipf_relation(3_000, CARDS4, skew=1.0, seed=29, dims=DIMS4)
    stream = stream_from_relation(relation, split_rows=750)  # 4 map tasks
    plain = mapreduce_materialize(stream, str(tmp_path / "plain"), workers=2,
                                  reducers=2)
    # reduce task ids start after the map tasks: kill partition 0
    faults = FaultPlan(crashes=[NodeCrash(4, 0.0)], seed=5)
    faulty = mapreduce_materialize(stream, str(tmp_path / "faulty"), workers=2,
                                   reducers=2, fault_plan=faults,
                                   batch_timeout=30)
    assert faulty.mr_stats.reduce_recovery.worker_crashes >= 1
    assert leaf_bytes(str(tmp_path / "faulty"), DIMS4) == \
        leaf_bytes(str(tmp_path / "plain"), DIMS4)
    _no_tmp_droppings(str(tmp_path / "faulty"))
    # a half-written leaf from the killed attempt must not have leaked
    # into the manifest: the reopened store passes full verification
    reopened = CubeStore.open(str(tmp_path / "faulty"), verify="full")
    assert reopened.total_rows == 3_000


def test_cube_under_faults_matches_oracle():
    stream = small_stream(2_000, split_rows=500)
    faults = FaultPlan(crashes=[NodeCrash(1, 0.0)], seed=7)
    result = mapreduce_iceberg_cube(stream, minsup=2, workers=2,
                                    fault_plan=faults, batch_timeout=30)
    assert result.recovery.worker_crashes >= 1
    oracle = naive_iceberg_cube(stream.materialize(), minsup=2)
    assert_same_cube(result, oracle)

"""BUC: correctness vs the oracle, pruning, write order, prefix cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buc import BucEngine, PrefixCache, buc_iceberg_cube
from repro.core.naive import naive_iceberg_cube
from repro.core.writer import ResultWriter
from repro.data import Relation, uniform_relation, zipf_relation
from repro.errors import PlanError
from repro.lattice import ProcessingTree, SubtreeTask

RELATIONS = st.builds(
    lambda rows: Relation(("A", "B", "C"), rows, [1.0] * len(rows)),
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
             max_size=60),
)


class TestCorrectness:
    @pytest.mark.parametrize("minsup", [1, 2, 3, 10])
    @pytest.mark.parametrize("breadth_first", [False, True])
    def test_matches_naive(self, small_skewed, minsup, breadth_first):
        expected = naive_iceberg_cube(small_skewed, minsup=minsup)
        got, _stats, _writer = buc_iceberg_cube(
            small_skewed, minsup=minsup, breadth_first=breadth_first
        )
        assert got.equals(expected), got.diff(expected)

    def test_sales_example(self, sales):
        got, _stats, _writer = buc_iceberg_cube(sales)
        assert got.equals(naive_iceberg_cube(sales))

    def test_empty_relation(self):
        rel = Relation(("A", "B"), [])
        got, _stats, _writer = buc_iceberg_cube(rel, minsup=1)
        assert got.total_cells() == 0

    def test_all_node_respects_minsup(self):
        rel = Relation(("A",), [(0,), (1,)])
        got, _, _ = buc_iceberg_cube(rel, minsup=3)
        assert got.cuboid(()) == {}

    @given(RELATIONS, st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_naive(self, relation, minsup):
        expected = naive_iceberg_cube(relation, minsup=minsup)
        got, _stats, _writer = buc_iceberg_cube(relation, minsup=minsup)
        assert got.equals(expected)

    @given(RELATIONS, st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_property_breadth_first_identical_cells(self, relation, minsup):
        df, _, _ = buc_iceberg_cube(relation, minsup=minsup, breadth_first=False)
        bf, _, _ = buc_iceberg_cube(relation, minsup=minsup, breadth_first=True)
        assert df.equals(bf)


class TestWriteOrder:
    def test_depth_first_scatters_breadth_first_does_not(self, small_skewed):
        _, _, df = buc_iceberg_cube(small_skewed, minsup=1, breadth_first=False)
        _, _, bf = buc_iceberg_cube(small_skewed, minsup=1, breadth_first=True)
        assert df.cells_written == bf.cells_written
        assert df.cuboid_switches > 5 * bf.cuboid_switches

    def test_breadth_first_switches_bounded_by_cuboids(self, small_skewed):
        _, _, bf = buc_iceberg_cube(small_skewed, minsup=1, breadth_first=True)
        assert bf.cuboid_switches <= 2 ** len(small_skewed.dims)


class TestPruning:
    def test_higher_minsup_means_less_work(self, small_skewed):
        _, loose, _ = buc_iceberg_cube(small_skewed, minsup=1)
        _, tight, _ = buc_iceberg_cube(small_skewed, minsup=8)
        assert tight.sort_units < loose.sort_units
        assert tight.scan_tuples < loose.scan_tuples

    def test_pruned_cells_never_written(self, small_skewed):
        got, _, _ = buc_iceberg_cube(small_skewed, minsup=5)
        for cells in got.cuboids.values():
            assert all(count >= 5 for count, _value in cells.values())


class TestTasks:
    def test_subtree_task_computes_only_its_nodes(self, small_uniform):
        dims = small_uniform.dims
        writer = ResultWriter(dims)
        engine = BucEngine(small_uniform, dims, 1, writer)
        task = SubtreeTask((dims[1],))
        engine.run_task(task, breadth_first=True)
        tree = ProcessingTree(dims)
        assert set(writer.result.cuboids) == set(task.nodes(tree))

    def test_chopped_task_skips_branches(self, small_uniform):
        dims = small_uniform.dims
        writer = ResultWriter(dims)
        engine = BucEngine(small_uniform, dims, 1, writer)
        task = SubtreeTask((dims[0],), skipped=((dims[0], dims[1]),))
        engine.run_task(task, breadth_first=True)
        assert (dims[0], dims[1]) not in writer.result.cuboids
        assert (dims[0],) in writer.result.cuboids

    def test_tasks_union_to_full_cube(self, small_skewed):
        from repro.lattice import binary_divide

        dims = small_skewed.dims
        tree = ProcessingTree(dims)
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        writer = ResultWriter(dims)
        engine = BucEngine(small_skewed, dims, 2, writer)
        for task in binary_divide(tree, 6):
            engine.run_task(task, breadth_first=True)
        writer.result.add_cell((), (), len(small_skewed), sum(small_skewed.measures))
        assert writer.result.equals(expected)

    def test_run_task_requires_subtree_task(self, small_uniform):
        engine = BucEngine(small_uniform, small_uniform.dims, 1,
                           ResultWriter(small_uniform.dims))
        with pytest.raises(PlanError):
            engine.run_task(("A",), breadth_first=True)


class TestCountingSort:
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    @pytest.mark.parametrize("breadth_first", [False, True])
    def test_counting_sort_identical_results(self, small_skewed, minsup,
                                             breadth_first):
        baseline, _s1, _w1 = buc_iceberg_cube(small_skewed, minsup=minsup,
                                              breadth_first=breadth_first)
        counting, _s2, _w2 = buc_iceberg_cube(small_skewed, minsup=minsup,
                                              breadth_first=breadth_first,
                                              counting_sort=True)
        assert counting.equals(baseline)

    def test_counting_sort_replaces_comparisons_with_moves(self, small_skewed):
        _r1, comparison, _w1 = buc_iceberg_cube(small_skewed, minsup=2)
        _r2, counting, _w2 = buc_iceberg_cube(small_skewed, minsup=2,
                                              counting_sort=True)
        assert counting.sort_units < comparison.sort_units
        assert counting.partition_moves > comparison.partition_moves

    @given(RELATIONS, st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_property_counting_sort_matches_naive(self, relation, minsup):
        expected = naive_iceberg_cube(relation, minsup=minsup)
        got, _stats, _writer = buc_iceberg_cube(relation, minsup=minsup,
                                                counting_sort=True)
        assert got.equals(expected)


class TestPrefixCache:
    def test_shared_depth(self):
        cache = PrefixCache()
        cache.path = [("A", []), ("B", [])]
        assert cache.shared_depth(("A", "B", "C")) == 2
        assert cache.shared_depth(("A", "C")) == 1
        assert cache.shared_depth(("B",)) == 0

    def test_cached_runs_produce_identical_results(self):
        rel = zipf_relation(300, [5, 4, 3, 3], skew=0.8, seed=3)
        dims = rel.dims
        tree = ProcessingTree(dims)
        tasks = [
            SubtreeTask(("A", "B")),
            SubtreeTask(("A", "C")),
            SubtreeTask(("A", "B", "C")),
            SubtreeTask(("B",)),
        ]
        plain_writer = ResultWriter(dims)
        plain = BucEngine(rel, dims, 2, plain_writer)
        for task in tasks:
            plain.run_task(task, breadth_first=True)
        cached_writer = ResultWriter(dims)
        cached = BucEngine(rel, dims, 2, cached_writer)
        cache = PrefixCache()
        for task in tasks:
            cached.run_task(task, breadth_first=True, cache=cache)
        assert cached_writer.result.equals(plain_writer.result)

    def test_cache_reduces_sort_work(self):
        rel = uniform_relation(600, [6, 5, 4, 3], seed=9)
        dims = rel.dims
        tasks = [SubtreeTask(("A", "B")), SubtreeTask(("A", "C")),
                 SubtreeTask(("A", "B", "C"))]

        def total_sort(use_cache):
            writer = ResultWriter(dims)
            engine = BucEngine(rel, dims, 1, writer)
            cache = PrefixCache() if use_cache else None
            for task in tasks:
                engine.run_task(task, breadth_first=True, cache=cache)
            return engine.stats.sort_units

        assert total_sort(True) < total_sort(False)

"""PartitionedCube / MemoryCube: minimal path cover and correctness."""

from math import comb

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import naive_iceberg_cube
from repro.core.partitioned_cube import (
    chain_attribute_order,
    minimal_paths,
    partitioned_cube,
    symmetric_chain_decomposition,
)
from repro.data import Relation
from repro.errors import PlanError


class TestSymmetricChains:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 6])
    def test_chain_count_is_central_binomial(self, n):
        chains = symmetric_chain_decomposition(list(range(n)))
        assert len(chains) == comb(n, n // 2)

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_chains_partition_the_powerset(self, n):
        chains = symmetric_chain_decomposition(list(range(n)))
        seen = [s for chain in chains for s in chain]
        assert len(seen) == 2 ** n
        assert len(set(seen)) == 2 ** n

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_chains_ascend_one_element_at_a_time(self, n):
        for chain in symmetric_chain_decomposition(list(range(n))):
            for small, big in zip(chain, chain[1:]):
                assert small < big
                assert len(big - small) == 1

    def test_four_dimensions_give_six_paths(self):
        # Figure 2.8(b): MemoryCube uses six pipelines for four dims.
        assert len(minimal_paths(("A", "B", "C", "D"))) == 6

    def test_chain_attribute_order_prefixes(self):
        chain = [frozenset("B"), frozenset("BC"), frozenset("ABC")]
        order = chain_attribute_order(chain, ["A", "B", "C"])
        for subset in chain:
            assert set(order[: len(subset)]) == subset

    def test_chain_attribute_order_rejects_bad_steps(self):
        with pytest.raises(PlanError):
            chain_attribute_order([frozenset("A"), frozenset("ABC")], ["A", "B", "C"])


class TestMinimalPathsRestricted:
    def test_must_contain_restricts_cover(self):
        paths = minimal_paths(("A", "B", "C"), must_contain=("A",))
        covered = {frozenset(s) for chain in paths for s in chain}
        expected = {
            frozenset(s)
            for s in [("A",), ("A", "B"), ("A", "C"), ("A", "B", "C")]
        }
        assert covered == expected

    def test_unrestricted_cover_is_all_nonempty_subsets(self):
        paths = minimal_paths(("A", "B", "C"))
        covered = [s for chain in paths for s in chain]
        assert len(covered) == len(set(covered)) == 7


class TestExecution:
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    def test_in_memory_matches_naive(self, small_skewed, minsup):
        expected = naive_iceberg_cube(small_skewed, minsup=minsup)
        got, _stats = partitioned_cube(small_skewed, minsup=minsup)
        assert got.equals(expected), got.diff(expected)

    @pytest.mark.parametrize("memory_rows", [20, 60, 150])
    def test_partitioned_matches_naive(self, small_skewed, memory_rows):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        got, stats = partitioned_cube(small_skewed, minsup=2, memory_rows=memory_rows)
        assert got.equals(expected), got.diff(expected)
        assert stats.partition_moves > 0

    def test_sales_example(self, sales):
        got, _stats = partitioned_cube(sales)
        assert got.equals(naive_iceberg_cube(sales))

    def test_invalid_memory_rejected(self, sales):
        with pytest.raises(PlanError):
            partitioned_cube(sales, memory_rows=0)

    def test_unsplittable_data_falls_back_to_memory(self):
        # Every tuple identical: no attribute can partition, so the
        # algorithm must compute in memory regardless of the limit.
        rel = Relation(("A", "B"), [(0, 0)] * 30)
        got, _stats = partitioned_cube(rel, minsup=1, memory_rows=5)
        assert got.cuboid(("A", "B")) == {(0, 0): (30, 30.0)}

    @given(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
                 max_size=40),
        st.integers(1, 3),
        st.integers(5, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_naive_under_memory_pressure(self, rows, minsup,
                                                          memory_rows):
        relation = Relation(("A", "B", "C"), rows, [1.0] * len(rows))
        expected = naive_iceberg_cube(relation, minsup=minsup)
        got, _stats = partitioned_cube(relation, minsup=minsup,
                                       memory_rows=memory_rows)
        assert got.equals(expected)

"""The shared-memory data plane: codec round-trips, segment lifecycle,
and crash hygiene (leak detection + sweep).

The codec tests are property-based: any mix of cuboids and cells —
including the >63-bit tuple-key fallback and adversarial float measures
— must decode to exactly the dict the worker encoded, bit for bit.
"""

import pickle
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import KeyPacking
from repro.parallel.shm import (
    DEV_SHM,
    MAGIC,
    Segment,
    ShmTransport,
    decode_result,
    encode_result,
)

#: Finite float64 values, including signed zeros and subnormals —
#: every one must survive the segment round-trip bit-exactly.
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)


def assert_items_bit_identical(got, want):
    """Cuboid items equal, with float sums compared by their bits.

    Plain ``==`` would let ``-0.0`` pass for ``0.0``; the transport
    promises the exact bytes back.
    """
    assert len(got) == len(want)
    for (g_cuboid, g_cells), (w_cuboid, w_cells) in zip(got, want):
        assert g_cuboid == w_cuboid
        assert set(g_cells) == set(w_cells)
        for cell, (w_count, w_sum) in w_cells.items():
            g_count, g_sum = g_cells[cell]
            assert g_count == w_count
            assert struct.pack("<d", g_sum) == struct.pack("<d", w_sum)


@st.composite
def packed_payloads(draw):
    """(items, dims, packing) whose cardinalities fit the 63-bit budget."""
    cards = draw(st.lists(st.integers(1, 50), min_size=1, max_size=4))
    dims = tuple("d%d" % i for i in range(len(cards)))
    packing = KeyPacking.plan(cards)
    assert packing is not None
    items = []
    for _ in range(draw(st.integers(0, 3))):
        k = draw(st.integers(0, len(cards)))
        positions = draw(st.permutations(range(len(cards))))[:k]
        cells = draw(st.dictionaries(
            st.tuples(*[st.integers(0, cards[p] - 1) for p in positions]),
            st.tuples(st.integers(1, 2 ** 40), finite_floats),
            max_size=15,
        ))
        items.append((tuple(dims[p] for p in positions), cells))
    return items, dims, packing


@st.composite
def overflow_payloads(draw):
    """(items, dims) for relations past the packed-key budget: codes are
    arbitrary int64-range values and the frame has ``packing=None``."""
    n_dims = draw(st.integers(1, 3))
    dims = tuple("d%d" % i for i in range(n_dims))
    items = []
    for _ in range(draw(st.integers(0, 3))):
        k = draw(st.integers(0, n_dims))
        positions = draw(st.permutations(range(n_dims)))[:k]
        cells = draw(st.dictionaries(
            st.tuples(*[st.integers(0, 2 ** 62 - 1) for _ in positions]),
            st.tuples(st.integers(1, 2 ** 60), finite_floats),
            max_size=15,
        ))
        items.append((tuple(dims[p] for p in positions), cells))
    return items, dims


class TestCodecRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(payload=packed_payloads())
    def test_packed_mode_round_trips_exactly(self, payload):
        items, dims, packing = payload
        buf = encode_result(items, dims, packing)
        got = decode_result(buf, dims, packing)
        assert_items_bit_identical(got, items)

    @settings(max_examples=150, deadline=None)
    @given(payload=overflow_payloads())
    def test_tuple_key_overflow_mode_round_trips_exactly(self, payload):
        # packing=None is what a frame whose cardinalities blow the
        # 63-bit budget carries: every coordinate rides as its own int64.
        items, dims = payload
        buf = encode_result(items, dims, packing=None)
        got = decode_result(buf, dims, packing=None)
        assert_items_bit_identical(got, items)

    def test_adversarial_floats_survive(self):
        # Signed zero, subnormal, huge, and ulp-adjacent sums must all
        # come back on the *right* cells, in the writer's order.
        dims = ("A", "B")
        packing = KeyPacking.plan([4, 4])
        cells = {
            (0, 0): (1, -0.0),
            (1, 2): (2, 5e-324),
            (2, 1): (3, 1.7976931348623157e308),
            (3, 3): (4, 1.0 + 2 ** -52),
        }
        items = [(("A", "B"), cells), (("B",), {(2,): (7, -1.5)})]
        got = decode_result(encode_result(items, dims, packing),
                            dims, packing)
        assert_items_bit_identical(got, items)
        # Order inside each cuboid is preserved (dict insertion order).
        assert list(got[0][1]) == list(cells)

    def test_empty_items(self):
        assert decode_result(encode_result([], ("A",), None), ("A",),
                             None) == []

    def test_empty_cuboid_cells(self):
        packing = KeyPacking.plan([3])
        items = [(("A",), {})]
        got = decode_result(encode_result(items, ("A",), packing),
                            ("A",), packing)
        assert got == items

    def test_bad_magic_rejected(self):
        buf = bytearray(encode_result([], ("A",), None))
        buf[0] ^= 0xFF
        with pytest.raises(ValueError):
            decode_result(bytes(buf), ("A",), None)

    def test_packed_segment_needs_packing_to_decode(self):
        packing = KeyPacking.plan([3, 3])
        buf = encode_result([(("A", "B"), {(1, 2): (1, 1.0)})],
                            ("A", "B"), packing)
        with pytest.raises(ValueError):
            decode_result(buf, ("A", "B"), None)
        assert MAGIC == struct.unpack_from("<I", buf)[0]


class TestSegments:
    @pytest.mark.parametrize("prefer_shm", [True, False])
    def test_create_attach_round_trip(self, prefer_shm):
        transport = ShmTransport.for_run("t-rt", prefer_shm=prefer_shm)
        try:
            payload = bytes(range(256)) * 4
            segment = transport.create(len(payload), tag="x")
            segment.buf[:] = payload
            descriptor = segment.descriptor
            segment.close()
            # The descriptor is all that crosses the pipe.
            other = transport.attach(descriptor)
            assert bytes(other.buf) == payload
            other.unlink()
            assert transport.leaked_segments() == []
        finally:
            transport.shutdown()

    def test_empty_segment_is_inline(self):
        transport = ShmTransport.for_run("t-empty")
        try:
            segment = transport.create(0)
            assert segment.descriptor == ("empty", "", 0)
            attached = transport.attach(segment.descriptor)
            assert bytes(attached.buf) == b""
        finally:
            transport.shutdown()

    def test_file_mode_requires_directory(self):
        with pytest.raises(ValueError):
            ShmTransport("t-nodir", mode="file", directory=None)
        with pytest.raises(ValueError):
            ShmTransport("t-bad", mode="carrier-pigeon")

    def test_file_mode_segments_live_under_the_run_directory(self, tmp_path):
        transport = ShmTransport("t-file", mode="file",
                                 directory=str(tmp_path))
        segment = transport.create(64, tag="seg")
        assert segment.kind == "file"
        assert segment.name.startswith(str(tmp_path))
        segment.buf[:8] = b"12345678"
        attached = transport.attach(segment.descriptor)
        assert bytes(attached.buf[:8]) == b"12345678"
        attached.close()
        segment.unlink()
        assert transport.leaked_segments() == []

    def test_transport_pickles_for_initargs(self, tmp_path):
        transport = ShmTransport("t-pkl", mode="file",
                                 directory=str(tmp_path))
        clone = pickle.loads(pickle.dumps(transport))
        assert (clone.run_id, clone.mode, clone.directory) == \
            ("t-pkl", "file", str(tmp_path))
        # Names stay unique across processes: the pid is baked into
        # every segment name (clones are unpickled in other processes).
        import os
        segment = clone.create(8, tag="a")
        assert "-%d-" % os.getpid() in os.path.basename(segment.name)
        segment.unlink()
        transport.shutdown()

    def test_unknown_descriptor_kind_rejected(self):
        transport = ShmTransport.for_run("t-kind")
        try:
            with pytest.raises(ValueError):
                transport.attach(("smoke-signal", "x", 8))
        finally:
            transport.shutdown()

    def test_unlink_tolerates_already_gone(self):
        # Sweeps race the parent's own unlink; second removal is a no-op.
        transport = ShmTransport.for_run("t-gone")
        try:
            segment = transport.create(16)
            descriptor = segment.descriptor
            segment.unlink()
            again = Segment(descriptor[0], descriptor[1], 0, None)
            again.unlink()  # already gone: must not raise
            assert transport.sweep() == 0
        finally:
            transport.shutdown()


class TestCrashHygiene:
    """A writer SIGKILLed mid-write leaks a half-written segment; the
    supervisor's sweep must find and reclaim exactly it."""

    def test_leak_detect_and_sweep(self):
        transport = ShmTransport.for_run("t-leak")
        try:
            orphan = transport.create(128, tag="orphan")
            orphan.buf[:4] = b"dead"  # half-written, descriptor lost
            orphan.close()
            keep = transport.create(128, tag="frame")
            leaked = transport.leaked_segments(exclude=(keep.name,))
            assert [name for _kind, name in leaked] != []
            assert all(keep.name not in name for _kind, name in leaked)
            assert transport.sweep(exclude=(keep.name,)) == len(leaked)
            # The excluded (live) segment survived the sweep.
            survivor = transport.attach(keep.descriptor)
            assert survivor.nbytes == 128
            survivor.close()
            keep.unlink()
        finally:
            transport.shutdown()

    def test_sweep_ignores_other_runs(self):
        ours = ShmTransport.for_run("t-mine")
        theirs = ShmTransport.for_run("t-theirs")
        try:
            foreign = theirs.create(64)
            assert ours.sweep() == 0
            assert bytes(foreign.buf) == b"\x00" * 64
            foreign.unlink()
        finally:
            ours.shutdown()
            theirs.shutdown()

    def test_shutdown_removes_the_run_directory(self):
        import os
        transport = ShmTransport.for_run("t-down", prefer_shm=False)
        directory = transport.directory
        transport.create(32)
        assert os.path.isdir(directory)
        assert transport.shutdown() == 1
        assert not os.path.isdir(directory)
        assert DEV_SHM  # referenced so the constant stays exported

"""ResultWriter: the I/O pattern ledger behind Figure 3.4."""

from repro.core.writer import ResultWriter


class TestWriteCell:
    def test_switch_counted_on_cuboid_change(self):
        w = ResultWriter(("A", "B"))
        w.write_cell(("A",), (0,), 1, 1.0)
        w.write_cell(("A",), (1,), 1, 1.0)
        w.write_cell(("A", "B"), (0, 0), 1, 1.0)
        w.write_cell(("A",), (2,), 1, 1.0)
        assert w.cuboid_switches == 3
        assert w.cells_written == 4

    def test_bytes_scale_with_cuboid_width(self):
        w = ResultWriter(("A", "B"))
        w.write_cell(("A",), (0,), 1, 1.0)
        narrow = w.bytes_written
        w.write_cell(("A", "B"), (0, 0), 1, 1.0)
        assert w.bytes_written - narrow > narrow

    def test_cells_recorded_in_result(self):
        w = ResultWriter(("A",))
        w.write_cell(("A",), (3,), 2, 7.0)
        assert w.result.cuboid(("A",)) == {(3,): (2, 7.0)}


class TestWriteBlock:
    def test_block_counts_one_switch(self):
        w = ResultWriter(("A", "B"))
        w.write_block(("A",), [((0,), 1, 1.0), ((1,), 1, 1.0), ((2,), 1, 1.0)])
        assert w.cuboid_switches == 1
        assert w.cells_written == 3

    def test_empty_block_costs_nothing(self):
        w = ResultWriter(("A",))
        w.write_block(("A",), [])
        assert w.cuboid_switches == 0
        assert w.cells_written == 0

    def test_block_to_same_cuboid_does_not_switch(self):
        w = ResultWriter(("A",))
        w.write_block(("A",), [((0,), 1, 1.0)])
        w.write_block(("A",), [((1,), 1, 1.0)])
        assert w.cuboid_switches == 1

    def test_breadth_beats_depth_on_interleaved_writes(self):
        depth = ResultWriter(("A", "B"))
        for i in range(10):
            depth.write_cell(("A",), (i,), 1, 1.0)
            depth.write_cell(("A", "B"), (i, 0), 1, 1.0)
        breadth = ResultWriter(("A", "B"))
        breadth.write_block(("A",), [((i,), 1, 1.0) for i in range(10)])
        breadth.write_block(("A", "B"), [((i, 0), 1, 1.0) for i in range(10)])
        assert depth.cuboid_switches == 20
        assert breadth.cuboid_switches == 2
        assert depth.result.equals(breadth.result)


class TestSnapshots:
    def test_delta(self):
        w = ResultWriter(("A",))
        before = w.snapshot()
        w.write_cell(("A",), (0,), 1, 1.0)
        cells, nbytes, switches = ResultWriter.delta(before, w.snapshot())
        assert (cells, switches) == (1, 1)
        assert nbytes == 3 * 8

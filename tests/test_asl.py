"""Algorithm ASL: cuboid tasks, affinity scheduling, skip-list reuse."""

from repro.cluster import cluster1
from repro.core.naive import naive_iceberg_cube
from repro.parallel import ASL
from repro.parallel.asl import (
    PREFIX_FIRST,
    PREFIX_PREV,
    SCRATCH,
    SUBSET_FIRST,
    SUBSET_PREV,
    _AslWorkerState,
    choose_mode,
)


class FakeState(_AslWorkerState):
    def __init__(self, first_dims=None, prev_dims=None):
        super().__init__(writer=None, seed=0)
        self.first_dims = first_dims
        self.first_list = object() if first_dims else None
        self.prev_dims = prev_dims
        self.prev_list = object() if prev_dims else None


class TestChooseMode:
    def test_no_state_is_scratch(self):
        assert choose_mode(("A",), None) == SCRATCH

    def test_prefix_of_previous_preferred(self):
        state = FakeState(first_dims=("A", "B", "C", "D"), prev_dims=("A", "B", "C"))
        assert choose_mode(("A", "B"), state) == PREFIX_PREV

    def test_prefix_of_first_when_prev_mismatches(self):
        state = FakeState(first_dims=("A", "B", "C"), prev_dims=("B", "C"))
        assert choose_mode(("A", "B"), state) == PREFIX_FIRST

    def test_subset_of_previous(self):
        state = FakeState(first_dims=("B", "C", "D"), prev_dims=("A", "C", "D"))
        assert choose_mode(("A", "D"), state) == SUBSET_PREV

    def test_subset_of_first(self):
        state = FakeState(first_dims=("A", "C", "D"), prev_dims=("B", "C"))
        assert choose_mode(("A", "D"), state) == SUBSET_FIRST

    def test_no_affinity_is_scratch(self):
        state = FakeState(first_dims=("A", "B"), prev_dims=("B", "C"))
        assert choose_mode(("D",), state) == SCRATCH


class TestScheduling:
    def test_one_task_per_cuboid(self, small_uniform):
        run = ASL().run(small_uniform, minsup=1, cluster_spec=cluster1(2))
        d = len(small_uniform.dims)
        assert len(run.simulation.schedule) == 2 ** d - 1

    def test_first_task_is_the_full_cuboid(self, small_uniform):
        run = ASL().run(small_uniform, minsup=1, cluster_spec=cluster1(2))
        assert run.simulation.schedule[0].label == "".join(small_uniform.dims)

    def test_load_balance_is_tight(self, small_skewed):
        run = ASL().run(small_skewed, minsup=2, cluster_spec=cluster1(4))
        assert run.simulation.load_imbalance() < 1.3

    def test_restricted_cuboids(self, small_uniform):
        targets = [("A", "B"), ("C",)]
        run = ASL(cuboids=targets).run(small_uniform, minsup=1,
                                       cluster_spec=cluster1(2))
        produced = set(run.result.cuboids) - {()}
        assert produced == {("A", "B"), ("C",)}
        expected = naive_iceberg_cube(small_uniform, minsup=1)
        for cuboid in produced:
            assert run.result.cuboids[cuboid] == expected.cuboids[cuboid]


class TestAffinityAblation:
    def test_affinity_reduces_work(self, small_skewed):
        with_affinity = ASL().run(small_skewed, minsup=2, cluster_spec=cluster1(4))
        without = ASL(affinity=False).run(small_skewed, minsup=2,
                                          cluster_spec=cluster1(4))
        assert with_affinity.result.equals(without.result)
        assert with_affinity.makespan < without.makespan

    def test_no_pruning_cells_kept_until_write(self, small_skewed):
        # ASL computes full cuboids and filters at write time: output at
        # minsup=5 is the minsup=1 output filtered.
        loose = ASL().run(small_skewed, minsup=1, cluster_spec=cluster1(2))
        tight = ASL().run(small_skewed, minsup=5, cluster_spec=cluster1(2))
        assert tight.result.equals(loose.result.filtered(5))

"""Concurrency smoke test for the serving layer (CI job, not pytest).

Starts a :class:`CubeServer` over a freshly built store, fires 100
queries concurrently from a 16-thread pool (a Zipf-flavoured repeated
workload, so the cache gets real traffic), and asserts every response
matches the naive single-threaded oracle.  This guards against data
races — torn leaf lists, cache entries crossing generations, telemetry
corruption — that deterministic unit tests won't reliably catch.

Run:  PYTHONPATH=src python tests/smoke_concurrency.py
"""

import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor

from repro import CubeServer, CubeStore, cluster1, zipf_relation
from repro.core.naive import naive_cuboid

N_QUERIES = 100
N_THREADS = 16


def main():
    relation = zipf_relation(2_000, [9, 7, 5, 4, 3], skew=1.0, seed=11)
    half = len(relation) // 2

    with tempfile.TemporaryDirectory() as tmp:
        store = CubeStore.build(relation.slice(0, half), tmp,
                                cluster_spec=cluster1(4))
        server = CubeServer(store, max_workers=N_THREADS)

        # Warm the cache on the half-built store, then append: the stale
        # entries must be invalidated, not served, by the workload below.
        server.query(("A",), 1)
        server.query(("A", "B"), 2)
        server.append(relation.slice(half, len(relation)))

        cuboids = [
            ("A",), ("B",), ("C",), ("D",), ("E",),
            ("A", "B"), ("A", "C"), ("B", "D"), ("C", "E"),
            ("A", "B", "C"), ("B", "C", "D"), ("A", "B", "C", "D", "E"),
        ]
        # Zipf-ish repetition: early cuboids dominate, so the cache works.
        workload = [
            (cuboids[(i * i) % len(cuboids) if i % 3 else 0], 1 + i % 3)
            for i in range(N_QUERIES)
        ]
        expected = {}
        for cuboid, minsup in set(workload):
            expected[(cuboid, minsup)] = {
                cell: agg
                for cell, agg in naive_cuboid(relation, cuboid).items()
                if agg[0] >= minsup
            }

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            futures = [pool.submit(server.query, cuboid, minsup)
                       for cuboid, minsup in workload]
            answers = [future.result() for future in futures]

        mismatches = 0
        for (cuboid, minsup), answer in zip(workload, answers):
            want = expected[(cuboid, minsup)]
            got = answer.cells
            if set(got) != set(want) or any(
                got[c][0] != want[c][0] or abs(got[c][1] - want[c][1]) > 1e-6
                for c in want
            ):
                mismatches += 1
                print("MISMATCH on %r minsup=%d (source=%s)"
                      % (cuboid, minsup, answer.source))

        stats = server.stats()
        server.close()
        store.close()

    print("answered %d queries on %d threads" % (len(answers), N_THREADS))
    print("cache: %d hits / %d misses (hit rate %.2f), %d invalidations"
          % (stats["cache"]["hits"], stats["cache"]["misses"],
             stats["cache"]["hit_rate"], stats["cache"]["invalidations"]))
    print("latency p50/p95/p99: %.3f / %.3f / %.3f ms"
          % (stats["telemetry"]["p50_ms"], stats["telemetry"]["p95_ms"],
             stats["telemetry"]["p99_ms"]))

    if mismatches:
        print("FAIL: %d of %d responses diverged from the oracle"
              % (mismatches, len(answers)))
        return 1
    if stats["cache"]["hit_rate"] <= 0:
        print("FAIL: repeated workload produced no cache hits")
        return 1
    if stats["telemetry"]["queries"] < N_QUERIES:
        print("FAIL: telemetry recorded %d queries, expected >= %d"
              % (stats["telemetry"]["queries"], N_QUERIES))
        return 1
    if stats["cache"]["invalidations"] == 0:
        print("FAIL: the post-append workload never invalidated a stale entry")
        return 1
    print("PASS: all %d concurrent responses oracle-exact" % len(answers))
    return 0


if __name__ == "__main__":
    sys.exit(main())

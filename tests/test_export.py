"""Cube persistence: save_cube/load_cube round trips."""

import json
import os

import pytest

from repro.cluster import cluster1
from repro.core.export import load_cube, save_cube
from repro.core.naive import naive_iceberg_cube
from repro.errors import SchemaError
from repro.queries import iceberg_cube


class TestRoundTrip:
    def test_exact_round_trip(self, small_skewed, tmp_path):
        result = naive_iceberg_cube(small_skewed, minsup=2)
        save_cube(result, tmp_path / "cube")
        loaded = load_cube(tmp_path / "cube")
        assert loaded.equals(result), loaded.diff(result)

    def test_parallel_result_round_trip(self, small_uniform, tmp_path):
        run = iceberg_cube(small_uniform, minsup=3, cluster_spec=cluster1(2))
        save_cube(run.result, tmp_path / "cube")
        assert load_cube(tmp_path / "cube").equals(run.result)

    def test_manifest_structure(self, small_uniform, tmp_path):
        result = naive_iceberg_cube(small_uniform, minsup=1)
        manifest = save_cube(result, tmp_path / "cube")
        assert manifest["format"] == "repro-cube/1"
        assert manifest["format_version"] == 1
        assert manifest["dims"] == list(small_uniform.dims)
        assert manifest["total_cells"] == result.total_cells()
        on_disk = json.loads((tmp_path / "cube" / "manifest.json").read_text())
        assert on_disk == manifest

    def test_one_file_per_cuboid(self, small_uniform, tmp_path):
        result = naive_iceberg_cube(small_uniform, minsup=1)
        save_cube(result, tmp_path / "cube")
        files = {f for f in os.listdir(tmp_path / "cube") if f.endswith(".csv")}
        assert "all.csv" in files
        assert "A.csv" in files
        assert "A_B_C_D.csv" in files
        assert len(files) == len(result.cuboids)

    def test_float_values_exact(self, tmp_path):
        from repro.core.result import CubeResult

        result = CubeResult(("A",))
        result.add_cell(("A",), (0,), 3, 0.1 + 0.2)  # not representable cleanly
        save_cube(result, tmp_path / "cube")
        loaded = load_cube(tmp_path / "cube")
        assert loaded.cuboid(("A",))[(0,)] == (3, 0.1 + 0.2)


class TestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SchemaError):
            load_cube(tmp_path)

    def test_unknown_format(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "other/9"}')
        with pytest.raises(SchemaError):
            load_cube(tmp_path)

    def test_header_mismatch_detected(self, small_uniform, tmp_path):
        result = naive_iceberg_cube(small_uniform, minsup=1)
        save_cube(result, tmp_path / "cube")
        path = tmp_path / "cube" / "A.csv"
        lines = path.read_text().splitlines()
        lines[0] = "wrong,count,sum"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaError):
            load_cube(tmp_path / "cube")

    def test_cell_count_mismatch_detected(self, small_uniform, tmp_path):
        result = naive_iceberg_cube(small_uniform, minsup=1)
        save_cube(result, tmp_path / "cube")
        path = tmp_path / "cube" / "A.csv"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one cell
        with pytest.raises(SchemaError):
            load_cube(tmp_path / "cube")

    def test_unsupported_format_version(self, small_uniform, tmp_path):
        result = naive_iceberg_cube(small_uniform, minsup=1)
        save_cube(result, tmp_path / "cube")
        manifest_path = tmp_path / "cube" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SchemaError):
            load_cube(tmp_path / "cube")

    def test_version_field_optional_for_old_saves(self, small_uniform, tmp_path):
        result = naive_iceberg_cube(small_uniform, minsup=2)
        save_cube(result, tmp_path / "cube")
        manifest_path = tmp_path / "cube" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["format_version"]  # a pre-versioning save
        manifest_path.write_text(json.dumps(manifest))
        assert load_cube(tmp_path / "cube").equals(result)


class TestAtomicWrites:
    def test_save_leaves_no_temp_files(self, small_uniform, tmp_path):
        result = naive_iceberg_cube(small_uniform, minsup=1)
        save_cube(result, tmp_path / "cube")
        leftovers = [f for f in os.listdir(tmp_path / "cube") if ".tmp" in f]
        assert leftovers == []

    def test_overwrite_is_atomic_on_failure(self, small_uniform, tmp_path):
        """A save that dies mid-write must leave the previous cube intact
        (temp file + os.replace, never in-place truncation)."""
        from repro.core import export

        result = naive_iceberg_cube(small_uniform, minsup=2)
        save_cube(result, tmp_path / "cube")

        class Boom(RuntimeError):
            pass

        def exploding(handle):
            handle.write("partial garbage")
            raise Boom()

        path = str(tmp_path / "cube" / "A.csv")
        before = (tmp_path / "cube" / "A.csv").read_text()
        with pytest.raises(Boom):
            export.atomic_write(path, exploding)
        assert (tmp_path / "cube" / "A.csv").read_text() == before
        assert [f for f in os.listdir(tmp_path / "cube") if ".tmp" in f] == []
        # and the whole cube still loads
        assert load_cube(tmp_path / "cube").equals(result)

"""Selective materialization: leaves answer everything, at any minsup."""

import pytest

from repro.cluster import cluster1
from repro.core.naive import naive_cuboid, naive_iceberg_cube
from repro.errors import PlanError
from repro.online import LeafMaterialization, leaf_cuboids


class TestLeafCuboids:
    def test_leaves_end_with_last_dimension(self):
        leaves = leaf_cuboids(("A", "B", "C"))
        assert all(c[-1] == "C" for c in leaves)
        assert len(leaves) == 4  # 2^(3-1)

    def test_every_cuboid_is_a_prefix_of_some_leaf(self):
        from repro.lattice import CubeLattice, is_prefix

        dims = ("A", "B", "C", "D")
        leaves = leaf_cuboids(dims)
        for cuboid in CubeLattice(dims).cuboids(include_all=False):
            assert any(is_prefix(cuboid, leaf) for leaf in leaves), cuboid

    def test_empty_dims_rejected(self):
        with pytest.raises(PlanError):
            leaf_cuboids(())


class TestQueries:
    @pytest.fixture
    def materialization(self, small_skewed):
        return LeafMaterialization(small_skewed, cluster_spec=cluster1(3))

    def test_single_cuboid_any_threshold(self, small_skewed, materialization):
        for cuboid in (("A",), ("A", "C"), ("B", "D"), ("A", "B", "C", "D")):
            for minsup in (1, 2, 4):
                expected = {
                    cell: agg
                    for cell, agg in naive_cuboid(small_skewed, cuboid).items()
                    if agg[0] >= minsup
                }
                got = materialization.query(cuboid, minsup=minsup)
                assert {k: (c, pytest.approx(v)) for k, (c, v) in got.items()} == expected

    def test_cuboid_given_out_of_order(self, small_skewed, materialization):
        direct = materialization.query(("A", "C"), minsup=2)
        reordered = materialization.query(("C", "A"), minsup=2)
        assert direct == reordered

    def test_all_node_query(self, small_skewed, materialization):
        assert materialization.query((), minsup=1) == {
            (): (len(small_skewed), pytest.approx(sum(small_skewed.measures)))
        }
        assert materialization.query((), minsup=len(small_skewed) + 1) == {}

    def test_whole_cube_at_new_threshold(self, small_skewed, materialization):
        expected = naive_iceberg_cube(small_skewed, minsup=3)
        got = materialization.query_cube(3)
        assert got.equals(expected), got.diff(expected)

    def test_covering_leaf_selection(self, materialization, small_skewed):
        last = small_skewed.dims[-1]
        leaf = materialization.covering_leaf(("A", "B"))
        assert leaf == ("A", "B", last)
        assert materialization.covering_leaf(("A", last)) == ("A", last)

    def test_precompute_time_recorded(self, materialization):
        assert materialization.precompute_seconds > 0


class TestIncrementalMaintenance:
    def test_insert_matches_rebuild(self, small_skewed):
        first = small_skewed.slice(0, 250)
        rest = small_skewed.slice(250, len(small_skewed))
        incremental = LeafMaterialization(first, cluster_spec=cluster1(3))
        incremental.insert(rest)
        rebuilt = LeafMaterialization(small_skewed, cluster_spec=cluster1(3))
        for minsup in (1, 2, 4):
            assert incremental.query_cube(minsup).equals(rebuilt.query_cube(minsup))

    def test_insert_updates_totals(self, small_skewed):
        half = len(small_skewed) // 2
        mat = LeafMaterialization(small_skewed.slice(0, half),
                                  cluster_spec=cluster1(2))
        mat.insert(small_skewed.slice(half, len(small_skewed)))
        assert mat.total_rows == len(small_skewed)
        import pytest as _pytest

        assert mat.total_measure == _pytest.approx(sum(small_skewed.measures))

    def test_insert_invalidates_sorted_cache(self, small_skewed):
        half = len(small_skewed) // 2
        mat = LeafMaterialization(small_skewed.slice(0, half),
                                  cluster_spec=cluster1(2))
        before = mat.query(("A",), minsup=1)
        mat.insert(small_skewed.slice(half, len(small_skewed)))
        after = mat.query(("A",), minsup=1)
        assert sum(c for c, _v in after.values()) == len(small_skewed)
        assert sum(c for c, _v in before.values()) == half

    def test_repeated_small_inserts(self, small_skewed):
        base = small_skewed.slice(0, 100)
        mat = LeafMaterialization(base, cluster_spec=cluster1(2))
        for start in range(100, len(small_skewed), 50):
            mat.insert(small_skewed.slice(start, start + 50))
        rebuilt = LeafMaterialization(small_skewed, cluster_spec=cluster1(2))
        assert mat.query_cube(2).equals(rebuilt.query_cube(2))

    def test_interleaved_insert_query_cycles(self, small_skewed):
        """Every query between inserts matches recomputing from the
        concatenation of everything inserted so far — i.e. the sorted
        -items cache is invalidated on every cycle, not just the first."""
        seen = small_skewed.slice(0, 80)
        mat = LeafMaterialization(seen, cluster_spec=cluster1(2))
        cuboids = (("A",), ("A", "B"), ("B", "D"), ("A", "B", "C", "D"))
        for start in range(80, len(small_skewed), 80):
            # touch the caches before inserting, so stale reuse would show
            for cuboid in cuboids:
                mat.query(cuboid, minsup=2)
            chunk = small_skewed.slice(start, start + 80)
            mat.insert(chunk)
            seen = seen.concat(chunk)
            for cuboid in cuboids:
                expected = {
                    cell: agg
                    for cell, agg in naive_cuboid(seen, cuboid).items()
                    if agg[0] >= 2
                }
                got = mat.query(cuboid, minsup=2)
                assert {
                    k: (c, pytest.approx(v)) for k, (c, v) in got.items()
                } == expected, (start, cuboid)

    def test_insert_bumps_generation(self, small_skewed):
        mat = LeafMaterialization(small_skewed.slice(0, 100),
                                  cluster_spec=cluster1(2))
        assert mat.generation == 1
        mat.insert(small_skewed.slice(100, 150))
        mat.append(small_skewed.slice(150, 200))  # store-compatible alias
        assert mat.generation == 3

    def test_interleaved_equals_concatenated_rebuild(self, small_skewed):
        """After alternating insert/query cycles, the whole cube equals a
        rebuild from the concatenated relation at every threshold."""
        mat = LeafMaterialization(small_skewed.slice(0, 100),
                                  cluster_spec=cluster1(2))
        acc = small_skewed.slice(0, 100)
        for start in range(100, len(small_skewed), 60):
            chunk = small_skewed.slice(start, start + 60)
            mat.query(("A", "C"), minsup=1)  # interleave reads with writes
            mat.insert(chunk)
            acc = acc.concat(chunk)
        rebuilt = LeafMaterialization(acc, cluster_spec=cluster1(2))
        for minsup in (1, 2, 4):
            assert mat.query_cube(minsup).equals(rebuilt.query_cube(minsup))

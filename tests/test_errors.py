"""The exception hierarchy: one base to catch them all."""

import pytest

from repro.errors import (
    ClusterDegradedError,
    ClusterError,
    EncodingError,
    MemoryBudgetExceeded,
    PlanError,
    ReproError,
    SchemaError,
    TaskRetryExhausted,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_cls",
        [SchemaError, EncodingError, PlanError, ClusterError, MemoryBudgetExceeded,
         TaskRetryExhausted, ClusterDegradedError],
    )
    def test_all_derive_from_repro_error(self, exc_cls):
        assert issubclass(exc_cls, ReproError)

    @pytest.mark.parametrize("exc_cls", [TaskRetryExhausted, ClusterDegradedError])
    def test_fault_errors_are_cluster_errors(self, exc_cls):
        assert issubclass(exc_cls, ClusterError)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise SchemaError("nope")

    def test_memory_budget_carries_numbers(self):
        exc = MemoryBudgetExceeded(150, 100, "boom")
        assert exc.used_bytes == 150
        assert exc.budget_bytes == 100
        assert "boom" in str(exc)
        assert "150" in str(exc)

    def test_memory_budget_default_message(self):
        exc = MemoryBudgetExceeded(2, 1)
        assert "memory budget exceeded" in str(exc)

    def test_retry_exhausted_carries_attempt_count(self):
        exc = TaskRetryExhausted("ABC", 4)
        assert exc.label == "ABC"
        assert exc.attempts == 4
        assert "ABC" in str(exc) and "4" in str(exc)

    def test_cluster_degraded_carries_casualties(self):
        exc = ClusterDegradedError(7, [2, 0])
        assert exc.pending_tasks == 7
        assert exc.failed_processors == (2, 0)
        assert "[0, 2]" in str(exc)  # sorted for readability


class TestLibraryRaisesItsOwnErrors:
    def test_api_surface_raises_repro_errors_only(self, small_uniform):
        from repro import iceberg_cube, iceberg_query

        with pytest.raises(ReproError):
            iceberg_cube(small_uniform, minsup=0)
        with pytest.raises(ReproError):
            iceberg_cube(small_uniform, algorithm="bogus")
        with pytest.raises(ReproError):
            iceberg_query(small_uniform, ("missing-dim",))

"""The exception hierarchy: one base to catch them all."""

import pytest

from repro.errors import (
    ClusterDegradedError,
    ClusterError,
    DeadlineExceededError,
    EncodingError,
    MemoryBudgetExceeded,
    PlanError,
    ReproError,
    SchemaError,
    ServerOverloadedError,
    StoreCorruptError,
    TaskRetryExhausted,
    WorkerCrashError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_cls",
        [SchemaError, EncodingError, PlanError, ClusterError, MemoryBudgetExceeded,
         TaskRetryExhausted, ClusterDegradedError, WorkerCrashError,
         StoreCorruptError, ServerOverloadedError, DeadlineExceededError],
    )
    def test_all_derive_from_repro_error(self, exc_cls):
        assert issubclass(exc_cls, ReproError)

    @pytest.mark.parametrize("exc_cls", [TaskRetryExhausted, ClusterDegradedError])
    def test_fault_errors_are_cluster_errors(self, exc_cls):
        assert issubclass(exc_cls, ClusterError)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise SchemaError("nope")

    def test_memory_budget_carries_numbers(self):
        exc = MemoryBudgetExceeded(150, 100, "boom")
        assert exc.used_bytes == 150
        assert exc.budget_bytes == 100
        assert "boom" in str(exc)
        assert "150" in str(exc)

    def test_memory_budget_default_message(self):
        exc = MemoryBudgetExceeded(2, 1)
        assert "memory budget exceeded" in str(exc)

    def test_retry_exhausted_carries_attempt_count(self):
        exc = TaskRetryExhausted("ABC", 4)
        assert exc.label == "ABC"
        assert exc.attempts == 4
        assert "ABC" in str(exc) and "4" in str(exc)

    def test_cluster_degraded_carries_casualties(self):
        exc = ClusterDegradedError(7, [2, 0])
        assert exc.pending_tasks == 7
        assert exc.failed_processors == (2, 0)
        assert "[0, 2]" in str(exc)  # sorted for readability

    def test_worker_crash_carries_batch_and_attempts(self):
        exc = WorkerCrashError(3, 4)
        assert exc.batch_id == 3
        assert exc.attempts == 4
        assert "batch 3" in str(exc) and "4 time(s)" in str(exc)

    def test_store_corrupt_names_leaf_and_reason(self):
        exc = StoreCorruptError(("A", "B"), "truncated or overwritten",
                                directory="/tmp/store")
        assert exc.leaf == ("A", "B")
        assert "truncated" in str(exc)
        assert "/tmp/store" in str(exc)

    def test_server_overloaded_carries_queue_shape(self):
        exc = ServerOverloadedError(pending=9, limit=8)
        assert exc.pending == 9
        assert exc.limit == 8
        assert "9" in str(exc) and "8" in str(exc)

    def test_deadline_exceeded_carries_budget(self):
        exc = DeadlineExceededError(0.25, elapsed_s=0.4, stage="store scan")
        assert exc.deadline_s == 0.25
        assert "store scan" in str(exc)


class TestLibraryRaisesItsOwnErrors:
    def test_api_surface_raises_repro_errors_only(self, small_uniform):
        from repro import iceberg_cube, iceberg_query

        with pytest.raises(ReproError):
            iceberg_cube(small_uniform, minsup=0)
        with pytest.raises(ReproError):
            iceberg_cube(small_uniform, algorithm="bogus")
        with pytest.raises(ReproError):
            iceberg_query(small_uniform, ("missing-dim",))


class TestCliSurfacesOneLine:
    """Every ReproError subclass ends up as a single `error:` line."""

    def test_robustness_errors_surface_without_traceback(self, tmp_path):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(["serve", "--store", str(tmp_path / "missing")], out=out)
        assert code == 2
        text = out.getvalue()
        assert text.startswith("error: ")
        assert len(text.strip().splitlines()) == 1
        assert "Traceback" not in text

    def test_worker_crash_surfaces_as_one_line(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(["cube", "--weather", "120", "--dims", "2",
                     "--backend", "local", "--workers", "2",
                     "--faults", "rate=1.0,retries=0,backoff=0.01"], out=out)
        assert code == 2
        text = out.getvalue()
        assert text.startswith("error: ")
        assert "retry budget" in text
        assert "Traceback" not in text

"""The exception hierarchy: one base to catch them all."""

import pytest

from repro.errors import (
    ClusterError,
    EncodingError,
    MemoryBudgetExceeded,
    PlanError,
    ReproError,
    SchemaError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_cls",
        [SchemaError, EncodingError, PlanError, ClusterError, MemoryBudgetExceeded],
    )
    def test_all_derive_from_repro_error(self, exc_cls):
        assert issubclass(exc_cls, ReproError)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise SchemaError("nope")

    def test_memory_budget_carries_numbers(self):
        exc = MemoryBudgetExceeded(150, 100, "boom")
        assert exc.used_bytes == 150
        assert exc.budget_bytes == 100
        assert "boom" in str(exc)
        assert "150" in str(exc)

    def test_memory_budget_default_message(self):
        exc = MemoryBudgetExceeded(2, 1)
        assert "memory budget exceeded" in str(exc)


class TestLibraryRaisesItsOwnErrors:
    def test_api_surface_raises_repro_errors_only(self, small_uniform):
        from repro import iceberg_cube, iceberg_query

        with pytest.raises(ReproError):
            iceberg_cube(small_uniform, minsup=0)
        with pytest.raises(ReproError):
            iceberg_cube(small_uniform, algorithm="bogus")
        with pytest.raises(ReproError):
            iceberg_query(small_uniform, ("missing-dim",))

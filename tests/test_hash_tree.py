"""Apriori hash tree: subset counting and memory metering."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryBudgetExceeded
from repro.structures.hash_tree import HashTree, MemoryMeter, _is_subset


class TestSubsetHelper:
    def test_subset_true(self):
        assert _is_subset((1, 4), (0, 1, 2, 4, 9))

    def test_subset_false(self):
        assert not _is_subset((1, 3), (0, 1, 2, 4))

    def test_empty_candidate(self):
        assert _is_subset((), (1, 2))


class TestInsertAndGet:
    def test_round_trip(self):
        tree = HashTree(2)
        tree.insert((1, 5))
        tree.insert((2, 9))
        assert tree.get((1, 5))[0] == (1, 5)
        assert tree.get((3, 3)) is None
        assert len(tree) == 2

    def test_wrong_arity_rejected(self):
        tree = HashTree(3)
        with pytest.raises(ValueError):
            tree.insert((1, 2))

    def test_leaf_splits_under_pressure(self):
        tree = HashTree(2, hash_mod=4, leaf_capacity=2)
        for i in range(20):
            tree.insert((i, i + 100))
        assert len(tree) == 20
        assert all(tree.get((i, i + 100)) is not None for i in range(20))

    def test_items_lists_everything(self):
        tree = HashTree(2, leaf_capacity=1)
        inserted = {(i, i + 50) for i in range(10)}
        for itemset in inserted:
            tree.insert(itemset)
        assert {itemset for itemset, _c, _v in tree.items()} == inserted


class TestSubsetCounting:
    def test_counts_match_brute_force(self):
        tree = HashTree(2, hash_mod=4, leaf_capacity=2)
        candidates = list(combinations(range(6), 2))
        for c in candidates:
            tree.insert(c)
        transactions = [(0, 1, 2), (1, 2, 3, 4), (0, 5), (2, 4, 5)]
        for t in transactions:
            tree.count_subsets(t, measure=1.0)
        for candidate in candidates:
            expected = sum(1 for t in transactions if set(candidate) <= set(t))
            assert tree.get(candidate)[1] == expected, candidate

    def test_measure_accumulates(self):
        tree = HashTree(1)
        tree.insert((3,))
        tree.count_subsets((1, 3), measure=2.5)
        tree.count_subsets((3, 9), measure=1.5)
        assert tree.get((3,))[1:] == [2, 4.0]

    @given(st.lists(st.lists(st.integers(0, 8), min_size=3, max_size=5, unique=True),
                    max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_property_counts_equal_brute_force(self, raw_transactions):
        transactions = [tuple(sorted(t)) for t in raw_transactions]
        tree = HashTree(3, hash_mod=3, leaf_capacity=2)
        candidates = list(combinations(range(9), 3))
        for c in candidates:
            tree.insert(c)
        for t in transactions:
            tree.count_subsets(t)
        for candidate in candidates:
            expected = sum(1 for t in transactions if set(candidate) <= set(t))
            assert tree.get(candidate)[1] == expected


class TestMemoryMeter:
    def test_peak_tracking(self):
        meter = MemoryMeter()
        meter.add(100)
        meter.add(50)
        meter.release(120)
        assert meter.used_bytes == 30
        assert meter.peak_bytes == 150

    def test_budget_enforced(self):
        meter = MemoryMeter(budget_bytes=200)
        meter.add(150)
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            meter.add(100)
        assert excinfo.value.used_bytes == 250
        assert excinfo.value.budget_bytes == 200

    def test_tree_charges_meter(self):
        meter = MemoryMeter()
        tree = HashTree(2, meter=meter)
        before = meter.used_bytes
        tree.insert((1, 2))
        assert meter.used_bytes > before

    def test_tree_budget_blowup(self):
        meter = MemoryMeter(budget_bytes=2000)
        tree = HashTree(2, leaf_capacity=2, meter=meter)
        with pytest.raises(MemoryBudgetExceeded):
            for i in range(200):
                tree.insert((i, i + 1000))

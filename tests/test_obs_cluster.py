"""Cluster-wide tracing and metrics federation.

Unit coverage for the distributed-trace context (128-bit trace ids,
``traceparent`` inject/extract/activate), the Prometheus text parser and
federation merge, histogram bucket merging, trace-stamped batch ids and
the worker-pool context pipe — plus a subprocess end-to-end test
asserting that one router query produces spans with one shared trace id
in both the router's and the replica's ``GET /trace`` output.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import unittest
from urllib.request import urlopen

import pytest

import repro.obs as obs
from repro.data import Relation, zipf_relation
from repro.obs.metrics import (
    MetricsRegistry,
    federate_prometheus,
    merge_histogram_buckets,
    parse_prometheus,
    quantile_from_buckets,
)
from repro.obs.trace import (
    Tracer,
    format_traceparent,
    merge_chrome_traces,
    parse_traceparent,
)
from repro.parallel.local import supervised_map
from repro.serve import CubeRouter, CubeStore
from repro.serve.ingest import stamped_batch_id, trace_id_of

SRC = os.path.join(os.path.dirname(__file__), "..", "src")


@pytest.fixture(autouse=True)
def _no_leaked_install():
    obs.uninstall()
    yield
    obs.uninstall()


class TestTraceparent:
    def test_roundtrip(self):
        header = format_traceparent("ab" * 16, 0x1234)
        assert header == "00-" + "ab" * 16 + "-0000000000001234-01"
        ctx = parse_traceparent(header)
        assert ctx.trace_id == "ab" * 16
        assert ctx.span_id == 0x1234

    def test_malformed_is_none_never_an_error(self):
        for bad in (None, 42, "", "garbage", "00-short-beef-01",
                    "01-" + "ab" * 16 + "-0000000000001234-01",
                    "00-" + "0" * 32 + "-0000000000001234-01",  # zero trace
                    "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # zero span
                    "00-" + "AB" * 16 + "-00000000000012:4-01"):
            assert parse_traceparent(bad) is None, bad

    def test_case_and_whitespace_tolerated(self):
        header = "  00-" + "AB" * 16 + "-0000000000001234-01  "
        ctx = parse_traceparent(header)
        assert ctx is not None
        assert ctx.trace_id == "ab" * 16


class TestTraceContext:
    def test_nested_spans_share_one_trace(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            assert len(root.trace_id) == 32
            with tracer.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.trace_id != second.trace_id
        assert first.span_id != second.span_id

    def test_inject_extract_activate_joins_the_trace(self):
        tracer = Tracer()
        with tracer.span("caller") as caller:
            header = tracer.inject()
        assert header == format_traceparent(caller.trace_id, caller.span_id)
        # "Another process": a fresh root under the activated context.
        with tracer.activate(tracer.extract(header)):
            with tracer.span("callee") as callee:
                assert callee.trace_id == caller.trace_id
                assert callee.parent_id == caller.span_id
        # Deactivated: back to fresh traces.
        with tracer.span("after") as after:
            assert after.trace_id != caller.trace_id

    def test_activate_accepts_raw_header_and_none(self):
        tracer = Tracer()
        with tracer.activate("00-" + "cd" * 16 + "-00000000000000ff-01"):
            with tracer.span("joined") as span:
                assert span.trace_id == "cd" * 16
                assert span.parent_id == 0xFF
        with tracer.activate(None):
            with tracer.span("fresh") as span:
                assert span.trace_id != "cd" * 16

    def test_inject_without_context_is_none(self):
        tracer = Tracer()
        assert tracer.inject() is None
        assert tracer.current_context() is None

    def test_context_is_per_thread(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("other-thread") as span:
                seen["trace"] = span.trace_id

        with tracer.span("main") as span:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert seen["trace"] != span.trace_id

    def test_add_span_carries_explicit_trace(self):
        tracer = Tracer()
        span = tracer.add_span("sim.task", 0.0, 1.0, trace_id="ef" * 16,
                               parent_id=7)
        assert span.trace_id == "ef" * 16
        assert span.parent_id == 7
        exported = tracer.spans_json()[0]
        assert exported["trace_id"] == "ef" * 16

    def test_module_helpers_follow_install_switch(self):
        assert obs.inject() is None
        assert obs.context() is None
        assert obs.trace_id() is None
        with obs.activate(None):
            pass  # no-op when uninstalled
        # extract is stateless: works either way
        assert obs.extract(format_traceparent("12" * 16, 3)).span_id == 3
        with obs.installed():
            with obs.span("s"):
                assert obs.trace_id() is not None
                assert obs.inject() is not None


class TestDroppedSpans:
    def test_ring_buffer_drops_are_counted_and_exported(self):
        with obs.installed(max_spans=4) as active:
            for i in range(10):
                active.tracer.add_span("s%d" % i, 0.0, 1.0)
            assert active.tracer.dropped == 6
            counter = active.registry.get("repro_obs_spans_dropped_total")
            assert counter.value() == 6
            assert "repro_obs_spans_dropped_total 6" \
                in active.registry.to_prometheus()
            trace = active.tracer.chrome_trace()
            assert trace["otherData"]["dropped_spans"] == 6

    def test_payload_carries_drop_count(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            tracer.add_span("s", 0.0, 1.0)
        payload = tracer.payload(node="n")
        assert payload["dropped"] == 3
        assert payload["node"] == "n"
        merged = merge_chrome_traces([("n", payload)])
        assert merged["otherData"]["dropped_spans"] == 3
        assert merged["otherData"]["dropped_by_process"] == {"n": 3}


class TestTracePaging:
    def test_since_filters_by_sequence(self):
        tracer = Tracer()
        tracer.add_span("a", 0.0, 1.0)
        tracer.add_span("b", 1.0, 1.0)
        everything = tracer.spans_json()
        assert [s["name"] for s in everything] == ["a", "b"]
        high_water = everything[0]["seq"]
        newer = tracer.spans_json(since=high_water)
        assert [s["name"] for s in newer] == ["b"]
        assert tracer.spans_json(since=everything[-1]["seq"]) == []


class TestMergeChromeTraces:
    def test_one_process_track_per_node(self):
        t1, t2 = Tracer(), Tracer()
        with t1.span("router.query"):
            pass
        with t2.span("serve.query"):
            pass
        merged = merge_chrome_traces([
            ("router", t1.payload(node="router")),
            ("shard0/replica0", t2.payload(node="shard0")),
        ])
        names = {e["args"]["name"]: e["pid"] for e in merged["traceEvents"]
                 if e["name"] == "process_name"}
        assert names == {"router": 1, "shard0/replica0": 2}
        by_pid = {e["pid"]: e["name"] for e in merged["traceEvents"]
                  if e.get("ph") == "X"}
        assert by_pid == {1: "router.query", 2: "serve.query"}

    def test_disabled_node_is_named_not_silent(self):
        merged = merge_chrome_traces([
            ("router", Tracer().payload(node="router")),
            ("shard0/replica1", {"enabled": False, "spans": []}),
        ])
        assert merged["otherData"]["disabled_processes"] == ["shard0/replica1"]

    def test_wall_spans_align_on_shared_epoch(self):
        early, late = Tracer(), Tracer()
        late.epoch_unix = early.epoch_unix + 2.0  # started 2s later
        early.add_span("a", 1.0, 0.5, clock="wall")
        late.add_span("b", 1.0, 0.5, clock="wall")
        merged = merge_chrome_traces([
            ("early", early.payload()), ("late", late.payload())])
        ts = {e["name"]: e["ts"] for e in merged["traceEvents"]
              if e.get("ph") == "X"}
        assert ts["b"] - ts["a"] == pytest.approx(2.0 * 1e6)


class TestPrometheusParser:
    def test_roundtrip_own_registry(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "Help text.", ("kind",)).inc(3, kind="a")
        registry.gauge("g", "A gauge.").set(2.5)
        registry.histogram("h_seconds", "Latency.").observe(0.002)
        families = parse_prometheus(registry.to_prometheus())
        assert families["x_total"]["kind"] == "counter"
        assert families["x_total"]["samples"] == [("x_total", {"kind": "a"},
                                                   3.0)]
        assert families["g"]["samples"][0][2] == 2.5
        # histogram suffixes grouped under the family
        names = {s[0] for s in families["h_seconds"]["samples"]}
        assert "h_seconds_sum" in names and "h_seconds_count" in names
        assert any(n.endswith("_bucket") for n in names)

    def test_escaped_label_values(self):
        tricky = '# TYPE t counter\nt{m="a\\"b,c\\\\d\\ne"} 1\n'
        ((_, labels, value),) = parse_prometheus(tricky)["t"]["samples"]
        assert labels["m"] == 'a"b,c\\d\ne'
        assert value == 1.0

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("x_total{oops} 1\n")
        with pytest.raises(ValueError):
            parse_prometheus("x_total not-a-number\n")


class TestFederation:
    R1 = ('# TYPE req_total counter\nreq_total{source="cache"} 3\n'
          '# TYPE lat histogram\nlat_bucket{le="0.1"} 1\n'
          'lat_bucket{le="+Inf"} 2\nlat_sum 0.5\nlat_count 2\n')
    R2 = ('# TYPE req_total counter\nreq_total{source="cache"} 4\n'
          '# TYPE lat histogram\nlat_bucket{le="0.1"} 3\n'
          'lat_bucket{le="+Inf"} 3\nlat_sum 0.2\nlat_count 3\n')

    def test_relabel_keeps_sources_distinct(self):
        page = federate_prometheus([
            ({"shard": "0", "replica": "0"}, self.R1),
            ({"shard": "0", "replica": "1"}, self.R2),
        ])
        assert 'req_total{replica="0",shard="0",source="cache"} 3' in page
        assert 'req_total{replica="1",shard="0",source="cache"} 4' in page

    def test_federated_totals_equal_sum_of_scrapes(self):
        # Identical labels (no relabelling) sum — counters and buckets.
        families = parse_prometheus(
            federate_prometheus([({}, self.R1), ({}, self.R2)]))
        assert families["req_total"]["samples"][0][2] == 7.0
        buckets = {s[1]["le"]: s[2]
                   for s in families["lat"]["samples"]
                   if s[0] == "lat_bucket"}
        assert buckets == {"0.1": 4.0, "+Inf": 5.0}

    def test_type_and_help_emitted_once(self):
        page = federate_prometheus([({}, self.R1), ({}, self.R2)])
        assert page.count("# TYPE req_total counter") == 1

    def test_merge_histogram_buckets(self):
        merged = merge_histogram_buckets([
            [(0.1, 1), (0.4, 4), ("+Inf", 5)],
            [(0.1, 2), (0.4, 2), ("+Inf", 7)],
        ])
        assert merged == [(0.1, 3.0), (0.4, 6.0), ("+Inf", 12.0)]

    def test_quantiles_from_merged_buckets(self):
        merged = [(0.1, 6.0), (0.4, 9.0), ("+Inf", 10.0)]
        assert quantile_from_buckets(merged, 0.50) == 0.1
        assert quantile_from_buckets(merged, 0.90) == 0.4
        # the +Inf bucket quotes the last finite bound
        assert quantile_from_buckets(merged, 1.0) == 0.4
        assert quantile_from_buckets([], 0.5) == 0.0
        assert quantile_from_buckets([(0.1, 0.0)], 0.5) == 0.0


class TestStampedBatchIds:
    def test_stamp_and_recover(self):
        trace = "ab" * 16
        batch = stamped_batch_id(trace)
        assert trace_id_of(batch) == trace
        assert batch != stamped_batch_id(trace)  # unique per mint

    def test_unstamped_ids_have_no_trace(self):
        assert trace_id_of(stamped_batch_id(None)) is None
        assert trace_id_of("not-hex-at-all") is None
        assert trace_id_of(None) is None
        assert trace_id_of("deadbeef") is None


def _record_traceparent(job):
    """Module-level task fn: echo the traceparent the pool shipped."""
    job_id, _attempt, _payload, traceparent = job
    return job_id, traceparent


def _noop_init():
    pass


class TestWorkerPoolPropagation:
    def test_inline_path_ships_the_context(self):
        with obs.installed():
            with obs.span("caller") as caller:
                out = supervised_map([None], workers=1,
                                     task_fn=_record_traceparent,
                                     initializer=_noop_init, initargs=())
                ctx = parse_traceparent(out[0])
                assert ctx.trace_id == caller.trace_id
                assert ctx.span_id == caller.span_id

    def test_no_context_ships_none(self):
        out = supervised_map([None], workers=1,
                             task_fn=_record_traceparent,
                             initializer=_noop_init, initargs=())
        assert out[0] is None

    def test_batch_spans_join_the_callers_trace(self):
        from repro.parallel.local import multiprocess_iceberg_cube

        relation = zipf_relation(60, dims=("A", "B"), cardinalities=(3, 4),
                                 skew=1.0, seed=5)
        with obs.installed() as active:
            with obs.span("driver") as driver:
                multiprocess_iceberg_cube(relation, ("A", "B"), minsup=1,
                                          workers=2)
            batches = active.tracer.spans("local.batch")
            assert batches
            for span in batches:
                assert span.trace_id == driver.trace_id


class TestRouterObservability(unittest.TestCase):
    """Subprocess e2e: one router query → one trace id on both sides."""

    @classmethod
    def setUpClass(cls):
        cls.root = tempfile.mkdtemp(prefix="obs-cluster-")
        cls.relation = zipf_relation(120, dims=("A", "B", "C"),
                                     cardinalities=(3, 4, 5), skew=1.0,
                                     seed=11)
        store_dir = os.path.join(cls.root, "store")
        CubeStore.build(cls.relation, store_dir, backend="local").close()
        env = dict(os.environ, PYTHONPATH=SRC)
        # --trace-out installs obs inside the replica, enabling /trace.
        cls.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--store", store_dir,
             "--port", "0",
             "--trace-out", os.path.join(cls.root, "replica-trace.json")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        for _ in range(40):
            line = cls.proc.stdout.readline()
            if not line:
                raise AssertionError("replica died during startup")
            if line.startswith("listening on "):
                cls.url = line.split()[2]
                break
        else:
            raise AssertionError("replica never reported its URL")

    @classmethod
    def tearDownClass(cls):
        cls.proc.terminate()
        cls.proc.wait(timeout=10)
        shutil.rmtree(cls.root, ignore_errors=True)

    def test_query_yields_one_shared_trace_id(self):
        with obs.installed() as active:
            router = CubeRouter([[self.url]], timeout_s=10.0)
            try:
                answer = router.query(("A",), minsup=1)
                assert answer.cells  # sanity: the query answered

                router_spans = {s.name: s
                                for s in active.tracer.spans()}
                root = router_spans["router.query"]
                assert len(root.trace_id) == 32

                with urlopen(self.url + "/trace?since=0") as response:
                    payload = json.loads(response.read())
                assert payload["enabled"] is True
                replica_spans = [s for s in payload["spans"]
                                 if s["trace_id"] == root.trace_id]
                by_name = {s["name"]: s for s in replica_spans}
                # serve.query joined the router's trace and parents
                # directly under the router.query span.
                assert by_name["serve.query"]["parent_id"] == root.span_id
                # the store scan is in the same trace, below serve.query
                assert "store.query" in by_name
            finally:
                router.close()

    def test_federated_metrics_equal_sum_of_scrapes(self):
        with obs.installed():
            router = CubeRouter([[self.url]], timeout_s=10.0)
            try:
                for _ in range(3):
                    router.query(("B",), minsup=1)
                with urlopen(self.url + "/metrics") as response:
                    replica_page = response.read().decode()
                federated = parse_prometheus(router.federated_metrics())
                replica = parse_prometheus(replica_page)
                # Every replica counter reappears federated with
                # shard/replica labels and an unchanged total.
                samples = {
                    (name, labels.get("source")): value
                    for name, labels, value in federated[
                        "repro_server_requests_total"]["samples"]
                    if labels.get("shard") == "0"
                    and labels.get("replica") == "0"
                }
                for name, labels, value in replica[
                        "repro_server_requests_total"]["samples"]:
                    key = (name, labels.get("source"))
                    assert samples[key] >= value  # scrape raced later incs
            finally:
                router.close()

    def test_collect_trace_has_one_track_per_node(self):
        with obs.installed():
            router = CubeRouter([[self.url]], timeout_s=10.0)
            try:
                router.query(("C",), minsup=1)
                merged = router.collect_trace()
                tracks = [e["args"]["name"] for e in merged["traceEvents"]
                          if e["name"] == "process_name"]
                assert tracks == ["router", "shard0/replica0"]
                assert merged["otherData"]["disabled_processes"] == []
            finally:
                router.close()

    def test_slow_query_log_records_exemplar_trace_ids(self):
        with obs.installed():
            # Threshold 0.000001ms: everything is a slow query.
            router = CubeRouter([[self.url]], timeout_s=10.0,
                                slow_query_s=1e-9)
            try:
                router.query(("A", "B"), minsup=1)
                entries = router.slow_queries()
                assert entries
                assert entries[-1]["kind"] == "query"
                assert len(entries[-1]["trace_id"]) == 32
                stats = router.stats()
                assert stats["slow_queries"] == entries
            finally:
                router.close()

    def test_append_stamps_batch_ids_with_the_trace(self):
        # A WAL-less store: append falls back to legacy mode, so drive
        # the stamping path directly through the server-side mint.
        with obs.installed() as active:
            with obs.span("ingest-driver") as driver:
                batch = stamped_batch_id(obs.trace_id())
            assert trace_id_of(batch) == driver.trace_id
            assert active  # keep flake8 quiet about unused name


class TestReplicaTraceDisabled(unittest.TestCase):
    """A replica without obs reports enabled=false, not a 500."""

    def test_trace_payload_disabled(self):
        from repro.serve.server import CubeServer

        root = tempfile.mkdtemp(prefix="obs-disabled-")
        try:
            relation = zipf_relation(40, dims=("A", "B"),
                                     cardinalities=(3, 3), skew=1.0, seed=3)
            store_dir = os.path.join(root, "store")
            CubeStore.build(relation, store_dir, backend="local").close()
            store = CubeStore.open(store_dir)
            server = CubeServer(store)
            try:
                payload = server.trace_payload()
                assert payload == {"enabled": False, "node": "store",
                                   "spans": []}
            finally:
                server.close()
                store.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)

"""Algorithm BPP: per-attribute range partitioning, partial cuboids."""

from repro.cluster import cluster1
from repro.core.naive import naive_iceberg_cube
from repro.data import zipf_relation
from repro.parallel import BPP


class TestChunkPlanning:
    def test_chunks_per_dimension_equal_processor_count(self, small_uniform):
        bpp = BPP()
        chunks = bpp.plan_chunks(small_uniform, small_uniform.dims, 3)
        assert set(chunks) == set(small_uniform.dims)
        assert all(len(parts) == 3 for parts in chunks.values())

    def test_chunks_partition_every_dimension(self, small_uniform):
        chunks = BPP().plan_chunks(small_uniform, small_uniform.dims, 4)
        for dim, parts in chunks.items():
            assert sum(len(p) for p in parts) == len(small_uniform)

    def test_chunk_code_ranges_disjoint(self, small_uniform):
        chunks = BPP().plan_chunks(small_uniform, small_uniform.dims, 2)
        for dim, parts in chunks.items():
            index = small_uniform.dim_index(dim)
            lows = {row[index] for row in parts[0].rows}
            highs = {row[index] for row in parts[1].rows}
            assert not (lows & highs)
            if lows and highs:
                assert max(lows) < min(highs)

    def test_skew_produces_uneven_chunks(self):
        rel = zipf_relation(2000, [40, 30], skew=1.3, seed=1)
        chunks = BPP().plan_chunks(rel, rel.dims, 4)
        sizes = sorted(len(p) for p in chunks["A"])
        assert sizes[-1] > 3 * max(1, sizes[0])


class TestExecution:
    def test_partial_cuboids_merge_to_exact_result(self, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        run = BPP().run(small_skewed, minsup=2, cluster_spec=cluster1(3))
        assert run.result.equals(expected), run.result.diff(expected)

    def test_every_processor_gets_m_tasks(self, small_uniform):
        run = BPP().run(small_uniform, minsup=1, cluster_spec=cluster1(3))
        m = len(small_uniform.dims)
        counts = {}
        for entry in run.simulation.schedule:
            counts[entry.processor] = counts.get(entry.processor, 0) + 1
        assert all(c == m for c in counts.values())

    def test_minsup_applies_within_chunks_correctly(self):
        # A cell's tuples all land in one chunk (cells of T_Ai contain
        # Ai), so per-chunk counting is exact even at chunk boundaries.
        rel = zipf_relation(600, [8, 5, 4], skew=1.0, seed=3)
        expected = naive_iceberg_cube(rel, minsup=3)
        run = BPP().run(rel, minsup=3, cluster_spec=cluster1(4))
        assert run.result.equals(expected)

    def test_partitioning_cost_optional(self, small_uniform):
        cheap = BPP().run(small_uniform, minsup=1, cluster_spec=cluster1(2))
        charged = BPP(include_partitioning_cost=True).run(
            small_uniform, minsup=1, cluster_spec=cluster1(2)
        )
        assert charged.makespan > cheap.makespan
        assert charged.result.equals(cheap.result)

    def test_skewed_data_imbalances_static_chunks(self):
        rel = zipf_relation(3000, [50, 40, 30], skew=1.2, seed=5)
        run = BPP().run(rel, minsup=2, cluster_spec=cluster1(8))
        assert run.simulation.load_imbalance() > 1.5

"""Generalized iceberg thresholds (HAVING conditions beyond COUNT)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import cluster1
from repro.core import (
    AndThreshold,
    CountThreshold,
    SumThreshold,
    as_threshold,
    buc_iceberg_cube,
    naive_iceberg_cube,
)
from repro.core.thresholds import validate_measures
from repro.data import Relation, zipf_relation
from repro.errors import PlanError
from repro.online import POL, LeafMaterialization
from repro.parallel import AHT, ASL, BPP, PT, RP


class TestThresholdObjects:
    def test_count_threshold(self):
        t = CountThreshold(3)
        assert t.qualifies(3, 0.0)
        assert not t.qualifies(2, 1e9)
        assert "COUNT(*) >= 3" == t.describe()

    def test_count_threshold_validation(self):
        with pytest.raises(PlanError):
            CountThreshold(0)

    def test_sum_threshold(self):
        t = SumThreshold(10.0)
        assert t.qualifies(1, 10.0)
        assert not t.qualifies(100, 9.9)
        assert "SUM" in t.describe()
        assert t.requires_nonnegative_measures

    def test_and_threshold(self):
        t = AndThreshold(CountThreshold(2), SumThreshold(5.0))
        assert t.qualifies(2, 5.0)
        assert not t.qualifies(1, 100.0)
        assert not t.qualifies(100, 1.0)
        assert "AND" in t.describe()
        assert t.requires_nonnegative_measures
        assert not AndThreshold(2).requires_nonnegative_measures

    def test_and_threshold_needs_conditions(self):
        with pytest.raises(PlanError):
            AndThreshold()

    def test_as_threshold_normalization(self):
        assert isinstance(as_threshold(3), CountThreshold)
        t = SumThreshold(1.0)
        assert as_threshold(t) is t
        with pytest.raises(PlanError):
            as_threshold(True)
        with pytest.raises(PlanError):
            as_threshold(2.5)
        with pytest.raises(PlanError):
            as_threshold(0)

    def test_validate_measures(self):
        ok = Relation(("A",), [(0,)], [1.0])
        bad = Relation(("A",), [(0,)], [-1.0])
        validate_measures(SumThreshold(1.0), ok)
        with pytest.raises(PlanError):
            validate_measures(SumThreshold(1.0), bad)
        validate_measures(CountThreshold(1), bad)  # counts don't care


@pytest.fixture
def positive_relation():
    return zipf_relation(400, [6, 5, 4], skew=0.8, seed=17, measure_range=(1, 20))


class TestSumThresholdCubes:
    def test_naive_filters_by_sum(self, positive_relation):
        result = naive_iceberg_cube(positive_relation, minsup=SumThreshold(100.0))
        assert result.total_cells() > 0
        for cells in result.cuboids.values():
            for _cell, (_count, value) in cells.items():
                assert value >= 100.0

    def test_buc_prunes_soundly_with_sum_threshold(self, positive_relation):
        expected = naive_iceberg_cube(positive_relation, minsup=SumThreshold(80.0))
        got, stats, _w = buc_iceberg_cube(positive_relation, minsup=SumThreshold(80.0))
        assert got.equals(expected), got.diff(expected)
        # Pruning actually happened: strictly less work than the full cube.
        _full, full_stats, _w2 = buc_iceberg_cube(positive_relation, minsup=1)
        assert stats.sort_units < full_stats.sort_units

    def test_buc_rejects_negative_measures_with_sum_threshold(self):
        rel = Relation(("A", "B"), [(0, 0), (1, 1)], [5.0, -1.0])
        with pytest.raises(PlanError):
            buc_iceberg_cube(rel, minsup=SumThreshold(1.0))

    @pytest.mark.parametrize("algo_cls", [RP, BPP, ASL, PT, AHT])
    def test_all_parallel_algorithms_support_sum_threshold(self, algo_cls,
                                                           positive_relation):
        threshold = SumThreshold(120.0)
        expected = naive_iceberg_cube(positive_relation, minsup=threshold)
        run = algo_cls().run(positive_relation, minsup=threshold,
                             cluster_spec=cluster1(3))
        assert run.result.equals(expected), (algo_cls.name,
                                             run.result.diff(expected))

    @pytest.mark.parametrize("algo_cls", [RP, BPP, ASL, PT, AHT])
    def test_parallel_algorithms_reject_unsound_pruning(self, algo_cls):
        rel = Relation(("A", "B"), [(0, 0), (1, 1)], [5.0, -1.0])
        with pytest.raises(PlanError):
            algo_cls().run(rel, minsup=SumThreshold(1.0), cluster_spec=cluster1(2))

    def test_conjunction_threshold(self, positive_relation):
        threshold = AndThreshold(CountThreshold(3), SumThreshold(60.0))
        expected = naive_iceberg_cube(positive_relation, minsup=threshold)
        run = PT().run(positive_relation, minsup=threshold, cluster_spec=cluster1(2))
        assert run.result.equals(expected)

    def test_sequential_baselines_support_sum_threshold(self, positive_relation):
        from repro.core import (
            apriori_iceberg_cube,
            overlap_iceberg_cube,
            partitioned_cube,
            pipehash_iceberg_cube,
            pipesort_iceberg_cube,
        )

        threshold = SumThreshold(90.0)
        expected = naive_iceberg_cube(positive_relation, minsup=threshold)
        assert pipesort_iceberg_cube(positive_relation, minsup=threshold)[0].equals(expected)
        assert pipehash_iceberg_cube(positive_relation, minsup=threshold)[0].equals(expected)
        assert overlap_iceberg_cube(positive_relation, minsup=threshold)[0].equals(expected)
        assert partitioned_cube(positive_relation, minsup=threshold)[0].equals(expected)
        assert apriori_iceberg_cube(positive_relation, minsup=threshold)[0].equals(expected)


class TestOnlineSumThresholds:
    def test_pol_with_sum_threshold(self, positive_relation):
        threshold = SumThreshold(50.0)
        run = POL(buffer_size=100).run(positive_relation, minsup=threshold,
                                       cluster_spec=cluster1(3))
        from repro.core.naive import naive_cuboid

        expected = {
            cell: agg
            for cell, agg in naive_cuboid(positive_relation,
                                          positive_relation.dims).items()
            if agg[1] >= 50.0
        }
        got = {k: (c, pytest.approx(v)) for k, (c, v) in run.cells.items()}
        assert got == expected

    def test_materialization_with_sum_threshold(self, positive_relation):
        materialization = LeafMaterialization(positive_relation,
                                              cluster_spec=cluster1(2))
        threshold = SumThreshold(70.0)
        expected = naive_iceberg_cube(positive_relation, minsup=threshold)
        assert materialization.query_cube(threshold).equals(expected)


class TestProperty:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=40
        ),
        st.floats(1.0, 50.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_buc_sum_threshold_matches_naive(self, rows, min_sum):
        relation = Relation(("A", "B"), rows, [float(1 + i % 5) for i in range(len(rows))])
        threshold = SumThreshold(min_sum)
        expected = naive_iceberg_cube(relation, minsup=threshold)
        got, _stats, _w = buc_iceberg_cube(relation, minsup=threshold)
        assert got.equals(expected)

"""Sampling: boundaries, key ranges, progressive estimates."""

import pytest

from repro.data import uniform_relation, zipf_relation
from repro.errors import PlanError
from repro.online.sampling import (
    count_confidence_interval,
    partition_boundaries,
    range_of,
    sample_keys,
    scale_estimate,
)


class TestSampleKeys:
    def test_keys_project_requested_dims(self):
        rel = uniform_relation(100, [4, 5, 6], seed=1)
        keys = sample_keys(rel, ("A", "C"), sample_size=10)
        assert len(keys) == 10
        assert all(len(k) == 2 for k in keys)

    def test_deterministic(self):
        rel = uniform_relation(100, [4, 5], seed=1)
        assert sample_keys(rel, rel.dims, 20) == sample_keys(rel, rel.dims, 20)


class TestBoundaries:
    def test_boundary_count_and_order(self):
        rel = uniform_relation(1000, [50], seed=2)
        boundaries = partition_boundaries(rel, ("A",), 4)
        assert len(boundaries) <= 3
        assert boundaries == sorted(boundaries)

    def test_single_partition_no_boundaries(self):
        rel = uniform_relation(10, [5], seed=1)
        assert partition_boundaries(rel, ("A",), 1) == []

    def test_invalid_parts_rejected(self):
        rel = uniform_relation(10, [5], seed=1)
        with pytest.raises(PlanError):
            partition_boundaries(rel, ("A",), 0)

    def test_boundaries_split_mass_roughly_evenly(self):
        rel = uniform_relation(4000, [100], seed=3)
        boundaries = partition_boundaries(rel, ("A",), 4, sample_size=512)
        counts = [0] * (len(boundaries) + 1)
        for row in rel.rows:
            counts[range_of((row[0],), boundaries)] += 1
        assert max(counts) < 2.5 * min(counts)

    def test_skew_collapses_boundaries(self):
        rel = zipf_relation(2000, [50], skew=2.0, seed=4)
        boundaries = partition_boundaries(rel, ("A",), 8)
        # Most sampled keys are equal, so deduplication shrinks the list.
        assert len(boundaries) < 7


class TestRangeOf:
    def test_binary_search_matches_linear(self):
        boundaries = [(3,), (7,), (9,)]
        for v in range(12):
            key = (v,)
            linear = sum(1 for b in boundaries if key >= b)
            assert range_of(key, boundaries) == linear

    def test_empty_boundaries(self):
        assert range_of((5,), []) == 0


class TestEstimates:
    def test_scale_estimate(self):
        assert scale_estimate(10, 100, 1000) == 100.0
        assert scale_estimate(10, 0, 1000) == 0.0

    def test_confidence_interval_contains_estimate(self):
        lo, hi = count_confidence_interval(50, 500, 5000)
        assert lo <= scale_estimate(50, 500, 5000) <= hi

    def test_interval_tightens_with_more_data(self):
        narrow = count_confidence_interval(100, 1000, 10000)
        wide = count_confidence_interval(10, 100, 10000)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_interval_clamped_to_valid_range(self):
        lo, hi = count_confidence_interval(1, 2, 100)
        assert lo >= 0.0
        assert hi <= 100.0

    def test_zero_processed_is_vacuous(self):
        assert count_confidence_interval(0, 0, 100) == (0.0, 100.0)

    def test_interval_collapses_when_fully_processed(self):
        # Finite-population correction: processing everything leaves no
        # sampling error.
        assert count_confidence_interval(37, 500, 500) == (37.0, 37.0)

    def test_unusual_confidence_level_supported(self):
        lo, hi = count_confidence_interval(50, 500, 5000, confidence=0.8)
        tight = hi - lo
        lo99, hi99 = count_confidence_interval(50, 500, 5000, confidence=0.99)
        assert tight < hi99 - lo99

    def test_invalid_confidence_rejected(self):
        with pytest.raises(PlanError):
            count_confidence_interval(5, 10, 100, confidence=1.5)

"""The sharded serving tier: shard map, replica client, cube router."""

import json
import os
import shutil
import subprocess
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.request import Request, urlopen

import pytest

from repro.core.naive import naive_cuboid
from repro.data import Relation, zipf_relation
from repro.errors import (
    GenerationSkewError,
    PlanError,
    ReplicaError,
    SchemaError,
    ShardUnavailableError,
)
from repro.lattice.lattice import CubeLattice
from repro.online.materialize import leaf_cuboids
from repro.serve import (
    CircuitBreaker,
    CubeRouter,
    CubeServer,
    CubeStore,
    ReplicaClient,
    ShardMap,
    stable_shard_hash,
)

DIMS = ("A", "B", "C", "D")


def oracle(relation, cuboid, minsup):
    return {
        cell: agg
        for cell, agg in naive_cuboid(relation, cuboid).items()
        if agg[0] >= minsup
    }


@pytest.fixture(scope="module")
def relation():
    return zipf_relation(400, dims=DIMS, cardinalities=(3, 4, 5, 6), seed=11)


# ----------------------------------------------------------------------
# stable placement hash
# ----------------------------------------------------------------------
class TestStableShardHash:
    def test_golden_values(self):
        # Hard-coded digests: placement must never move between
        # releases, interpreters, or PYTHONHASHSEED values.  If this
        # test fails, every deployed shard store is misplaced.
        assert stable_shard_hash(("A", "C")) == 1378977737794177289
        assert stable_shard_hash(("B", "C")) == 8676957610916005946
        assert stable_shard_hash(("C",)) == 7321326824121056267
        assert stable_shard_hash(("A", "B", "C")) == 7246433988025455002

    def test_stable_across_hash_randomization(self):
        # Run the same hash in subprocesses with different
        # PYTHONHASHSEED values: builtin hash() would differ, ours
        # must not.
        code = ("import sys; sys.path.insert(0, %r); "
                "from repro.serve.cluster import stable_shard_hash; "
                "print(stable_shard_hash(('A', 'B', 'D')))"
                % os.path.join(os.path.dirname(__file__), "..", "src"))
        outputs = set()
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            outputs.add(subprocess.run(
                [sys.executable, "-c", code], env=env, capture_output=True,
                text=True, check=True).stdout.strip())
        assert len(outputs) == 1

    def test_distinct_leaves_distinct_hashes(self):
        leaves = leaf_cuboids(DIMS)
        hashes = {stable_shard_hash(leaf) for leaf in leaves}
        assert len(hashes) == len(leaves)


# ----------------------------------------------------------------------
# shard map invariants
# ----------------------------------------------------------------------
class TestShardMap:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 8])
    def test_partition_is_complete_and_disjoint(self, n_shards):
        shard_map = ShardMap(DIMS, n_shards)
        seen = {}
        for shard in range(n_shards):
            for leaf in shard_map.leaves_for(shard):
                assert leaf not in seen, "leaf %r on two shards" % (leaf,)
                seen[leaf] = shard
        assert set(seen) == set(leaf_cuboids(DIMS))
        assert sum(shard_map.counts()) == len(shard_map.leaves)

    @pytest.mark.parametrize("n_shards", [1, 3, 4])
    def test_every_cuboid_maps_to_exactly_one_shard(self, n_shards):
        shard_map = ShardMap(DIMS, n_shards)
        lattice = CubeLattice(DIMS)
        owned = {shard: set() for shard in range(n_shards)}
        for shard in range(n_shards):
            for leaf in shard_map.leaves_for(shard):
                owned[shard].add(leaf)
                owned[shard].add(leaf[:-1])
        all_cuboids = list(lattice.cuboids(include_all=False)) + [()]
        for cuboid in all_cuboids:
            shard = shard_map.shard_of(cuboid)
            assert 0 <= shard < n_shards
            # the owning shard is the one holding its covering leaf...
            assert cuboid in owned[shard]
            # ...and no other shard holds it
            holders = [s for s in owned if cuboid in owned[s]]
            assert holders == [shard]

    def test_shard_of_ignores_given_order(self):
        shard_map = ShardMap(DIMS, 3)
        assert shard_map.shard_of(("C", "A")) == shard_map.shard_of(("A", "C"))

    def test_rejects_bad_arguments(self):
        with pytest.raises(PlanError):
            ShardMap(DIMS, 0)
        with pytest.raises(PlanError):
            ShardMap((), 2)
        with pytest.raises(PlanError):
            ShardMap(DIMS, 2).leaves_for(7)

    def test_validate_store_accepts_matching_shard(self, relation, tmp_path):
        shard_map = ShardMap(DIMS, 3)
        store = CubeStore.build(relation, tmp_path / "s2", backend="local",
                                shard=(2, 3))
        shard_map.validate_store(store, 2)
        store.close()

    def test_validate_store_refuses_reshard(self, relation, tmp_path):
        # Built as 2/3 but served under a 4-shard map: the placement
        # moved, so serving it would silently misroute — refuse.
        store = CubeStore.build(relation, tmp_path / "s", backend="local",
                                shard=(2, 3))
        with pytest.raises(PlanError, match="rebuild"):
            ShardMap(DIMS, 4).validate_store(store, 2)
        with pytest.raises(PlanError):
            ShardMap(DIMS, 3).validate_store(store, 1)
        store.close()

    def test_validate_store_refuses_unsharded(self, relation, tmp_path):
        store = CubeStore.build(relation, tmp_path / "mono", backend="local")
        with pytest.raises(PlanError, match="unsharded"):
            ShardMap(DIMS, 3).validate_store(store, 0)
        store.close()

    def test_validate_store_refuses_wrong_dims(self, relation, tmp_path):
        store = CubeStore.build(relation, tmp_path / "s", backend="local",
                                shard=(0, 2))
        with pytest.raises(SchemaError):
            ShardMap(("A", "B", "C"), 2).validate_store(store, 0)
        store.close()

    def test_shard_recorded_in_manifest_survives_reopen(self, relation,
                                                        tmp_path):
        CubeStore.build(relation, tmp_path / "s", backend="local",
                        shard=(1, 3)).close()
        store = CubeStore.open(tmp_path / "s")
        assert store.shard == (1, 3)
        expected = frozenset(ShardMap(DIMS, 3).leaves_for(1))
        assert frozenset(store.leaves) == expected
        store.close()


# ----------------------------------------------------------------------
# replica client error taxonomy
# ----------------------------------------------------------------------
class _CannedHandler(BaseHTTPRequestHandler):
    """Answers every GET with the server's configured status/body."""

    def do_GET(self):  # noqa: N802 - http.server naming
        status, payload = self.server.canned
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


def _canned_server(status, payload):
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _CannedHandler)
    httpd.canned = (status, payload)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return httpd


class TestReplicaClient:
    def test_5xx_is_replica_error(self):
        httpd = _canned_server(503, {"error": "shedding"})
        try:
            client = ReplicaClient("http://127.0.0.1:%d" % httpd.server_port)
            with pytest.raises(ReplicaError) as info:
                client.get_json("/query")
            assert info.value.status == 503
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_4xx_is_permanent_plan_error(self):
        httpd = _canned_server(400, {"error": "bad cuboid"})
        try:
            client = ReplicaClient("http://127.0.0.1:%d" % httpd.server_port)
            with pytest.raises(PlanError, match="bad cuboid"):
                client.get_json("/query")
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_connection_refused_is_replica_error(self):
        client = ReplicaClient("http://127.0.0.1:1", timeout_s=0.5)
        with pytest.raises(ReplicaError):
            client.get_json("/healthz")


# ----------------------------------------------------------------------
# the router over a real in-process cluster
# ----------------------------------------------------------------------
N_SHARDS, N_REPLICAS = 3, 2


class Cluster:
    """3 shards x 2 replicas of real CubeServers over HTTP, each replica
    on its own copy of the shard store (replicas do not share disks)."""

    def __init__(self, relation, root):
        self.relation = relation
        self.endpoints = {}  # (shard, replica) -> HttpEndpoint
        self.servers = {}
        urls = []
        for shard in range(N_SHARDS):
            built = os.path.join(root, "build-%d" % shard)
            CubeStore.build(relation, built, backend="local",
                            shard=(shard, N_SHARDS)).close()
            replica_urls = []
            for replica in range(N_REPLICAS):
                directory = os.path.join(root, "shard-%d-r%d"
                                         % (shard, replica))
                shutil.copytree(built, directory)
                server = CubeServer(CubeStore.open(directory))
                endpoint = server.serve_http()
                self.servers[(shard, replica)] = server
                self.endpoints[(shard, replica)] = endpoint
                replica_urls.append(endpoint.url)
            urls.append(replica_urls)
        self.urls = urls

    def kill(self, shard, replica):
        self.endpoints.pop((shard, replica)).close()

    def close(self):
        for endpoint in self.endpoints.values():
            endpoint.close()
        for server in self.servers.values():
            server.close()
            server.store.close()


@pytest.fixture
def cluster(relation, tmp_path):
    cluster = Cluster(relation, str(tmp_path))
    yield cluster
    cluster.close()


def make_router(cluster, **kwargs):
    kwargs.setdefault("timeout_s", 5.0)
    return CubeRouter(cluster.urls, **kwargs)


class TestRouterQueries:
    def test_query_matches_oracle_and_names_its_shard(self, cluster, relation):
        with make_router(cluster) as router:
            for cuboid in [("A",), ("B", "D"), ("A", "B", "C", "D"), ("C",)]:
                answer = router.query(cuboid, minsup=2)
                assert answer.cells == oracle(relation, cuboid, 2)
                assert answer.shard == router.shard_for(cuboid)
                assert answer.generation == 1
                assert answer.failovers == 0

    def test_point_lookup(self, cluster, relation):
        with make_router(cluster) as router:
            full = oracle(relation, ("A", "B"), 1)
            cell = sorted(full)[0]
            answer = router.point(("A", "B"), cell)
            assert answer.cells == {cell: full[cell]}

    def test_cube_merges_every_cuboid_at_one_generation(self, cluster,
                                                        relation):
        with make_router(cluster) as router:
            answer = router.cube(minsup=3)
            assert answer.generation == 1
            lattice = CubeLattice(DIMS)
            expected_cuboids = {c for c in lattice.cuboids(include_all=False)}
            expected_cuboids.add(())
            assert set(answer.cuboids) == expected_cuboids
            for cuboid, cells in answer.cuboids.items():
                assert cells == oracle(relation, cuboid, 3), cuboid

    def test_append_reaches_every_replica_then_cube_converges(
            self, cluster, relation):
        delta = Relation(DIMS, [(0, 0, 0, 0), (1, 1, 1, 1)], [5.0, 7.0])
        merged = Relation(DIMS, list(relation.rows) + list(delta.rows),
                          list(relation.measures) + list(delta.measures))
        with make_router(cluster) as router:
            summary = router.append(delta)
            assert summary["applied"] == N_SHARDS * N_REPLICAS
            answer = router.cube(minsup=3)
            assert answer.generation == 2
            for cuboid, cells in answer.cuboids.items():
                assert cells == oracle(merged, cuboid, 3), cuboid


class TestRouterFailover:
    def test_replica_death_fails_over_to_sibling(self, cluster, relation):
        with make_router(cluster) as router:
            shard = router.shard_for(("A",))
            cluster.kill(shard, 0)
            # Every query must still be answered correctly; round-robin
            # guarantees the dead replica is attempted within two calls.
            failovers = 0
            for _ in range(4):
                answer = router.query(("A",), minsup=2)
                assert answer.cells == oracle(relation, ("A",), 2)
                failovers += answer.failovers
            assert failovers >= 1

    def test_whole_shard_down_is_structured_503(self, cluster):
        with make_router(cluster) as router:
            shard = router.shard_for(("A",))
            router._ensure_map()
            for replica in range(N_REPLICAS):
                cluster.kill(shard, replica)
            with pytest.raises(ShardUnavailableError) as info:
                router.query(("A",), minsup=2)
            assert info.value.shard == shard
            # Other shards keep answering: degradation is partial.
            other = next(c for c in [("A",), ("B",), ("C",), ("D",)]
                         if router.shard_for(c) != shard)
            assert router.query(other).cells

    def test_open_breaker_takes_replica_out_of_rotation(self, cluster,
                                                        relation):
        with make_router(
                cluster,
                breaker_factory=lambda: CircuitBreaker(
                    failure_threshold=1, reset_after_s=60.0)) as router:
            shard = router.shard_for(("A",))
            cluster.kill(shard, 0)
            for _ in range(4):
                router.query(("A",), minsup=2)
            # One failure tripped the breaker; later calls skip the dead
            # replica without re-dialling it.
            assert router.breakers[(shard, 0)].state == "open"
            answer = router.query(("A",), minsup=2)
            assert answer.failovers == 0
            assert answer.cells == oracle(relation, ("A",), 2)

    def test_health_sweep_reports_down_replica(self, cluster):
        with make_router(cluster) as router:
            cluster.kill(1, 0)
            snapshot = router.check_health()
            assert snapshot[(1, 0)]["status"] == "down"
            assert snapshot[(1, 1)]["status"] == "ok"
            health = router.health()
            assert health["status"] == "ok"  # a sibling still serves shard 1
            assert health["shards"][1]["up"] == 1

    def test_append_fails_when_whole_shard_down(self, cluster):
        with make_router(cluster) as router:
            router._ensure_map()
            for replica in range(N_REPLICAS):
                cluster.kill(0, replica)
            with pytest.raises(ShardUnavailableError) as info:
                router.append(Relation(DIMS, [(0, 0, 0, 0)], [1.0]))
            assert info.value.shard == 0


class TestGenerationPinning:
    def test_skewed_shard_is_requeried_until_pinned(self, cluster, relation):
        delta = Relation(DIMS, [(2, 2, 2, 2)], [3.0])
        merged = Relation(DIMS, list(relation.rows) + list(delta.rows),
                          list(relation.measures) + [3.0])
        with make_router(cluster) as router:
            router._ensure_map()
            # Sneak an append onto shard 0's replicas behind the
            # router's back: the cluster is now generation-skewed.
            for replica in range(N_REPLICAS):
                cluster.servers[(0, replica)].append(delta)
            # The fan-out sees {2, 1, 1}; it must refuse to merge.
            with pytest.raises(GenerationSkewError) as info:
                router.cube(minsup=3)
            assert set(info.value.generations) == {1, 2}
            # Once the other shards catch up the same fan-out converges.
            for shard in (1, 2):
                for replica in range(N_REPLICAS):
                    cluster.servers[(shard, replica)].append(delta)
            answer = router.cube(minsup=3)
            assert answer.generation == 2
            for cuboid, cells in answer.cuboids.items():
                assert cells == oracle(merged, cuboid, 3), cuboid

    def test_single_shard_answers_are_single_generation(self, cluster):
        # A point/query answer carries exactly one generation by
        # construction — the replica's verified read.
        with make_router(cluster) as router:
            answer = router.query(("B",))
            assert isinstance(answer.generation, int)


class TestRouterValidation:
    def test_misplaced_replica_is_refused(self, cluster):
        # Swap two shards' URL lists: the bootstrap health check sees a
        # replica reporting the wrong placement and refuses to route.
        swapped = [cluster.urls[1], cluster.urls[0], cluster.urls[2]]
        with CubeRouter(swapped, timeout_s=5.0) as router:
            with pytest.raises(PlanError, match="re-sharding|reports"):
                router.query(("A",))

    def test_rejects_empty_topology(self):
        with pytest.raises(PlanError):
            CubeRouter([])
        with pytest.raises(PlanError):
            CubeRouter([[]])


class TestRouterHTTP:
    def test_http_surface(self, cluster, relation):
        with make_router(cluster) as router:
            endpoint = router.serve_http()
            base = endpoint.url
            with urlopen(base + "/query?cuboid=A,B&minsup=2") as response:
                payload = json.loads(response.read())
            cells = {tuple(e["cell"]): (e["count"], e["sum"])
                     for e in payload["cells"]}
            assert cells == oracle(relation, ("A", "B"), 2)
            assert payload["generation"] == 1
            with urlopen(base + "/cube?minsup=4") as response:
                cube = json.loads(response.read())
            assert cube["generation"] == 1
            assert len(cube["cuboids"]) == 16
            with urlopen(base + "/healthz") as response:
                health = json.loads(response.read())
            assert health["status"] == "ok"
            assert health["n_shards"] == N_SHARDS
            with urlopen(base + "/metrics") as response:
                metrics = response.read().decode()
            assert "repro_router_requests_total" in metrics

    def test_http_append_and_shard_unavailable(self, cluster):
        with make_router(cluster) as router:
            endpoint = router.serve_http()
            body = json.dumps({"dims": list(DIMS),
                               "rows": [[0, 1, 2, 3]],
                               "measures": [2.5]}).encode()
            request = Request(endpoint.url + "/append", data=body,
                              headers={"Content-Type": "application/json"})
            with urlopen(request) as response:
                summary = json.loads(response.read())
            assert summary["applied"] == N_SHARDS * N_REPLICAS
            shard = router.shard_for(("A",))
            for replica in range(N_REPLICAS):
                cluster.kill(shard, replica)
            try:
                urlopen(endpoint.url + "/query?cuboid=A")
            except Exception as exc:
                assert exc.code == 503
                detail = json.loads(exc.read())
                assert detail["kind"] == "shard_unavailable"
                assert detail["shard"] == shard
            else:  # pragma: no cover
                pytest.fail("expected a structured 503")

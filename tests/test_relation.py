"""Relation: schema checks, projection, sorting, partitioning."""

import pytest

from repro.data import Relation, from_raw_rows
from repro.errors import SchemaError


def make():
    return Relation(
        ("A", "B", "C"),
        [(0, 1, 2), (1, 0, 2), (0, 0, 1), (2, 1, 0)],
        [10.0, 20.0, 30.0, 40.0],
    )


class TestConstruction:
    def test_default_measures_are_ones(self):
        rel = Relation(("A",), [(0,), (1,)])
        assert rel.measures == [1.0, 1.0]

    def test_duplicate_dims_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("A", "A"), [])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("A", "B"), [(1,)])

    def test_measure_count_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("A",), [(0,)], [1.0, 2.0])

    def test_from_raw_rows_pops_measure_column(self):
        rel = from_raw_rows(("X", "Y"), [["a", "b", 5], ["a", "c", 7]], measure_index=2)
        assert rel.measures == [5.0, 7.0]
        assert rel.rows == [(0, 0), (0, 1)]
        assert rel.encoder.decode_cell(("Y",), (1,)) == ("c",)


class TestAccessors:
    def test_dim_index_and_indices(self):
        rel = make()
        assert rel.dim_index("B") == 1
        assert rel.dim_indices(("C", "A")) == (2, 0)

    def test_unknown_dim_raises(self):
        with pytest.raises(SchemaError):
            make().dim_index("Z")

    def test_cardinality_counts_present_codes(self):
        rel = make()
        assert rel.cardinality("A") == 3
        assert rel.cardinality("C") == 3

    def test_cardinality_product(self):
        rel = make()
        assert rel.cardinality_product(("A", "B")) == 3 * 2
        assert rel.cardinality_product() == 3 * 2 * 3

    def test_declared_cardinalities_preferred(self):
        rel = Relation(("A",), [(0,)], cardinalities={"A": 50})
        assert rel.cardinality("A") == 50


class TestTransforms:
    def test_project_keeps_measures(self):
        rel = make().project(("C", "A"))
        assert rel.dims == ("C", "A")
        assert rel.rows[0] == (2, 0)
        assert rel.measures == [10.0, 20.0, 30.0, 40.0]

    def test_project_single_dim(self):
        rel = make().project(("B",))
        assert rel.rows == [(1,), (0,), (0,), (1,)]

    def test_sorted_by_is_lexicographic(self):
        rel = make().sorted_by(("A", "B"))
        assert rel.rows == [(0, 0, 1), (0, 1, 2), (1, 0, 2), (2, 1, 0)]
        assert rel.measures == [30.0, 10.0, 20.0, 40.0]

    def test_take_reorders_rows_and_measures(self):
        rel = make().take([3, 0])
        assert rel.rows == [(2, 1, 0), (0, 1, 2)]
        assert rel.measures == [40.0, 10.0]

    def test_slice(self):
        rel = make().slice(1, 3)
        assert len(rel) == 2
        assert rel.measures == [20.0, 30.0]

    def test_concat_requires_same_schema(self):
        a, b = make(), make()
        merged = a.concat(b)
        assert len(merged) == 8
        with pytest.raises(SchemaError):
            a.concat(b.project(("A", "B")))


class TestPartitioning:
    def test_range_partition_covers_all_rows_disjointly(self):
        rel = make()
        parts = rel.range_partition("A", 2)
        assert sum(len(p) for p in parts) == len(rel)
        codes = [set(r[0] for r in p.rows) for p in parts]
        assert codes[0] & codes[1] == set()

    def test_range_partition_respects_code_ranges(self):
        rel = make()
        parts = rel.range_partition("A", 3)
        for part_index, part in enumerate(parts):
            for row in part.rows:
                assert row[0] // 1 == part_index  # width 1 for card 3 / 3 parts

    def test_range_partition_more_parts_than_codes(self):
        rel = make()
        parts = rel.range_partition("B", 5)  # B has 2 codes
        assert sum(len(p) for p in parts) == len(rel)
        assert len(parts) == 5

    def test_range_partition_invalid_parts(self):
        with pytest.raises(SchemaError):
            make().range_partition("A", 0)

    def test_block_partition_contiguous(self):
        rel = make()
        parts = rel.block_partition(3)
        assert [len(p) for p in parts] == [2, 2, 0]
        assert parts[0].rows == rel.rows[:2]

    def test_block_partition_empty_relation(self):
        rel = Relation(("A",), [])
        parts = rel.block_partition(2)
        assert [len(p) for p in parts] == [0, 0]

    def test_sample_rows_deterministic_and_bounded(self):
        rel = make()
        s1 = rel.sample_rows(2, seed=1)
        s2 = rel.sample_rows(2, seed=1)
        assert s1 == s2
        assert len(s1) == 2
        assert all(0 <= i < len(rel) for i in s1)

    def test_sample_rows_empty_cases(self):
        assert Relation(("A",), []).sample_rows(5) == []
        assert make().sample_rows(0) == []

"""Chaos smoke test: kill, corrupt and overload the real paths (CI job).

Three acts, each asserting the acceptance criteria of the robustness
work end-to-end rather than via unit seams:

1. **Worker chaos** — a fault plan SIGKILLs real pool workers and hangs
   a batch past the supervisor's timeout; the cube must still match the
   single-process oracle cell-for-cell.
2. **Append crash sweep** — an append is interrupted at *every* file
   operation (atomic_write / os.replace / os.unlink) in turn; each
   reopen must land on exactly the old or the new generation, with
   queries matching the corresponding full-store oracle at
   ``verify="full"``.
3. **Overload flood** — hundreds of concurrent queries hit a small
   server whose recompute fallback always fails: the admission gate
   must shed the excess, the circuit breaker must trip (and say so in
   stats), and cache/store-served answers must keep flowing correctly
   throughout.

Run:  PYTHONPATH=src python tests/smoke_chaos.py
"""

import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor

from repro import CubeServer, CubeStore, cluster1, zipf_relation
from repro.cluster.faults import FaultPlan, Slowdown, TaskFailure
from repro.core.naive import naive_cuboid, naive_iceberg_cube
from repro.errors import DeadlineExceededError, ServerOverloadedError
from repro.parallel.local import multiprocess_iceberg_cube
from repro.serve import CircuitBreaker
from repro.serve import store as store_module


def act_one_worker_chaos():
    relation = zipf_relation(500, [8, 6, 5, 3], skew=1.0, seed=19)
    expected = naive_iceberg_cube(relation, minsup=2)

    plan = FaultPlan(failures=[TaskFailure(0, 0), TaskFailure(3, 0)],
                     slowdowns=[Slowdown(1, 4.0)], backoff_s=0.01)
    got = multiprocess_iceberg_cube(relation, minsup=2, workers=3,
                                    batch_size=2, fault_plan=plan,
                                    batch_timeout=1.0)
    assert got.equals(expected), got.diff(expected)
    recovery = got.recovery
    assert recovery.worker_crashes >= 1, recovery
    assert recovery.retries >= 2, recovery

    # A pure hang (no crash to pre-empt it) must be diagnosed as a stall.
    plan = FaultPlan(slowdowns=[Slowdown(0, 4.0)], backoff_s=0.01)
    got = multiprocess_iceberg_cube(relation, minsup=2, workers=2,
                                    batch_size=2, fault_plan=plan,
                                    batch_timeout=1.0)
    assert got.equals(expected), got.diff(expected)
    assert got.recovery.stalls >= 1, got.recovery
    print("act 1: SIGKILLed %d worker(s), survived %d stall(s), "
          "%d retries -- oracle-exact"
          % (recovery.worker_crashes, got.recovery.stalls,
             recovery.retries + got.recovery.retries))


class Boom(RuntimeError):
    pass


class CrashingOps:
    """Wrap the store module's file ops to die after ``n`` calls."""

    def __init__(self, fail_after):
        self.fail_after = fail_after
        self.calls = 0

    def _tick(self):
        self.calls += 1
        if self.calls > self.fail_after:
            raise Boom("simulated crash at file op %d" % self.calls)


def act_two_append_crash_sweep():
    relation = zipf_relation(400, [8, 5, 6, 3], skew=1.0, seed=7)
    base = relation.slice(0, 300)
    delta = relation.slice(300, len(relation))

    real_atomic_write = store_module.atomic_write
    real_replace = store_module.os.replace
    real_unlink = store_module.os.unlink

    with tempfile.TemporaryDirectory() as tmp:
        old_dir = tmp + "/old-oracle"
        new_dir = tmp + "/new-oracle"
        CubeStore.build(base, old_dir).close()
        CubeStore.build(relation, new_dir).close()
        with CubeStore.open(old_dir, verify="off") as old_store, \
                CubeStore.open(new_dir, verify="off") as new_store:
            leaves = list(old_store.leaves)
            old_answers = {leaf: old_store.query(leaf, minsup=2)
                           for leaf in leaves}
            new_answers = {leaf: new_store.query(leaf, minsup=2)
                           for leaf in leaves}

        crash_point = 0
        outcomes = {1: 0, 2: 0}
        while True:
            ops = CrashingOps(crash_point)

            def crashing_write(path, writer, _ops=ops, **kwargs):
                _ops._tick()
                return real_atomic_write(path, writer, **kwargs)

            def crashing_replace(src, dst, _ops=ops):
                _ops._tick()
                return real_replace(src, dst)

            def crashing_unlink(path, _ops=ops):
                _ops._tick()
                return real_unlink(path)

            victim_dir = "%s/victim-%d" % (tmp, crash_point)
            CubeStore.build(base, victim_dir).close()
            store = CubeStore.open(victim_dir, verify="off")
            store_module.atomic_write = crashing_write
            store_module.os.replace = crashing_replace
            store_module.os.unlink = crashing_unlink
            try:
                store.append(delta)
                completed = True
            except Boom:
                completed = False
            finally:
                store_module.atomic_write = real_atomic_write
                store_module.os.replace = real_replace
                store_module.os.unlink = real_unlink
                store.close()

            with CubeStore.open(victim_dir, verify="full") as reopened:
                generation = reopened.generation
                assert generation in (1, 2), generation
                oracle = old_answers if generation == 1 else new_answers
                for leaf in leaves:
                    got = reopened.query(leaf, minsup=2)
                    assert got == oracle[leaf], (crash_point, leaf)
            outcomes[generation] += 1
            if completed:
                break
            crash_point += 1

    assert outcomes[1] > 0 and outcomes[2] > 0, outcomes
    print("act 2: append interrupted at %d distinct crash points -- "
          "%d rolled back to gen 1, %d rolled forward to gen 2, "
          "all oracle-exact at verify=full"
          % (crash_point + 1, outcomes[1], outcomes[2]))


def act_three_overload_flood():
    relation = zipf_relation(1_500, [9, 7, 5, 4], skew=1.0, seed=23)
    n_queries, n_threads = 500, 32

    with tempfile.TemporaryDirectory() as tmp:
        # Materialize only three of the four dims: cuboids touching "D"
        # must fall through to the (deliberately broken) recompute path.
        store = CubeStore.build(relation, tmp, dims=("A", "B", "C"),
                                cluster_spec=cluster1(4))
        server = CubeServer(store, relation=relation, max_workers=4,
                            max_pending=16,
                            breaker=CircuitBreaker(failure_threshold=3,
                                                   reset_after_s=60.0))
        server._compute = lambda cuboid, threshold: (_ for _ in ()).throw(
            RuntimeError("recompute backend is down"))

        served = {("A",): dict(naive_cuboid(relation, ("A",))),
                  ("A", "B"): dict(naive_cuboid(relation, ("A", "B"))),
                  ("B", "C"): dict(naive_cuboid(relation, ("B", "C")))}
        expected = {
            cuboid: {cell: agg for cell, agg in cells.items() if agg[0] >= 2}
            for cuboid, cells in served.items()
        }

        counts = {"ok": 0, "shed": 0, "broken": 0, "wrong": 0}

        def client(i):
            cuboids = list(expected)
            if i % 5 == 0:
                try:  # poison traffic: needs the dead recompute path
                    server.query(("A", "D"), 2)
                    counts["wrong"] += 1
                except (RuntimeError, ServerOverloadedError,
                        DeadlineExceededError):
                    counts["broken"] += 1
                return
            cuboid = cuboids[i % len(cuboids)]
            try:
                future = server.submit(cuboid, 2)
            except ServerOverloadedError:
                counts["shed"] += 1
                return
            answer = future.result(timeout=30.0)
            if answer.cells == expected[cuboid]:
                counts["ok"] += 1
            else:
                counts["wrong"] += 1

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(client, range(n_queries)))

        stats = server.stats()["resilience"]
        health = server.health()
        server.close()
        store.close()

    assert counts["wrong"] == 0, counts
    assert counts["ok"] > 0, counts
    assert counts["broken"] > 0, counts
    assert stats["breaker"]["trips"] >= 1, stats
    assert stats["breaker"]["state"] == "open", stats
    assert health["breaker"] == "open", health
    # With 32 clients racing a 16-slot gate the flood must shed some
    # load (either at submit or as breaker fast-fails).
    assert stats["admission"]["shed"] + stats["breaker"]["rejections"] > 0
    print("act 3: flood of %d queries -> %d served exactly, %d shed/fast-"
          "failed, breaker tripped %d time(s) and left open -- cache/store "
          "hits kept flowing"
          % (n_queries, counts["ok"],
             counts["shed"] + counts["broken"] + stats["breaker"]["rejections"],
             stats["breaker"]["trips"]))


def main():
    act_one_worker_chaos()
    act_two_append_crash_sweep()
    act_three_overload_flood()
    print("PASS: chaos smoke survived worker kills, torn appends and "
          "overload")
    return 0


if __name__ == "__main__":
    sys.exit(main())

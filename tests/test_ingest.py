"""Durable exactly-once ingestion: WAL codec, store deltas, router repair."""

import json
import os
import struct
import subprocess
import sys
import time
from urllib.request import Request, urlopen

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import backends
from repro.core.naive import naive_cuboid
from repro.data import Relation
from repro.errors import (
    PlanError,
    ReplicaError,
    ShardUnavailableError,
    WalCorruptError,
)
from repro.serve import CubeRouter, CubeServer, CubeStore, RetryPolicy
from repro.serve.ingest import (
    MAX_COORD,
    MODE_COLUMNS,
    MODE_PACKED,
    WriteAheadLog,
    decode_record,
    encode_record,
)

DIMS = ("A", "B", "C")


def base_relation():
    rows = [(i % 3, (i * 7) % 5, i % 2) for i in range(60)]
    return Relation(DIMS, rows, [float(i % 4 + 1) for i in range(60)])


def delta_relation(seed, n=8):
    rows = [((seed + i) % 3, (seed * 3 + i) % 5, (seed + i) % 2)
            for i in range(n)]
    return Relation(DIMS, rows, [float(seed + i) for i in range(n)])


def combined(*relations):
    rows, measures = [], []
    for relation in relations:
        rows.extend(relation.rows)
        measures.extend(relation.measures)
    return Relation(DIMS, rows, measures)


def oracle(relation, cuboid, minsup=1):
    return {cell: agg for cell, agg in naive_cuboid(relation, cuboid).items()
            if agg[0] >= minsup}


def assert_store_matches(store, relation):
    for cuboid in ((), ("A",), ("A", "B"), DIMS):
        for minsup in (1, 2):
            assert store.query(cuboid, minsup) == oracle(
                relation, cuboid, minsup)


# ---------------------------------------------------------------------------
# WAL record codec
# ---------------------------------------------------------------------------
class TestWalCodec:
    @given(st.lists(
        st.tuples(st.integers(0, 500), st.integers(0, 9), st.integers(0, 3)),
        max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_packed(self, rows):
        measures = [float(i) * 0.5 for i in range(len(rows))]
        data = encode_record(7, "batch-7", DIMS, rows, measures)
        mode = struct.unpack_from("<4sHHQI", data)[2]
        assert mode == MODE_PACKED
        record = decode_record(data)
        assert record.generation == 7
        assert record.batch_id == "batch-7"
        assert record.dims == DIMS
        assert [tuple(r) for r in record.rows] == [tuple(r) for r in rows]
        assert record.measures == measures

    @given(st.lists(
        st.tuples(st.integers(0, MAX_COORD), st.integers(0, MAX_COORD),
                  st.integers(0, MAX_COORD)),
        min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_any_coordinate_width(self, rows):
        """Keys wider than 63 bits fall back to i64 columns, exactly."""
        measures = [1.0] * len(rows)
        data = encode_record(3, "wide", DIMS, rows, measures)
        record = decode_record(data)
        assert [tuple(r) for r in record.rows] == [tuple(r) for r in rows]

    def test_overflow_keys_use_column_mode(self):
        rows = [(MAX_COORD, MAX_COORD, MAX_COORD), (1, 2, 3)]
        data = encode_record(1, "x", DIMS, rows, [1.0, 2.0])
        assert struct.unpack_from("<4sHHQI", data)[2] == MODE_COLUMNS
        assert [tuple(r) for r in decode_record(data).rows] == rows

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_flipped_byte_is_detected(self, data_strategy):
        data = encode_record(5, "b", DIMS, [(1, 2, 1), (0, 4, 0)], [1.0, 2.0])
        index = data_strategy.draw(st.integers(0, len(data) - 1))
        flip = data_strategy.draw(st.integers(1, 255))
        corrupt = bytearray(data)
        corrupt[index] ^= flip
        with pytest.raises(WalCorruptError):
            decode_record(bytes(corrupt))

    def test_truncated_record_is_detected(self):
        data = encode_record(5, "b", DIMS, [(1, 2, 1)], [1.0])
        for cut in (0, 10, len(data) - 1):
            with pytest.raises(WalCorruptError):
                decode_record(data[:cut])

    def test_row_measure_mismatch_rejected(self):
        with pytest.raises(PlanError):
            encode_record(1, "b", DIMS, [(1, 2, 3)], [1.0, 2.0])

    def test_out_of_range_coordinates_rejected(self):
        with pytest.raises(PlanError):
            encode_record(1, "b", DIMS, [(-1, 0, 0)], [1.0])
        with pytest.raises(PlanError):
            encode_record(1, "b", DIMS, [(MAX_COORD + 1, 0, 0)], [1.0])


# ---------------------------------------------------------------------------
# WriteAheadLog file lifecycle
# ---------------------------------------------------------------------------
class TestWriteAheadLog:
    def test_lifecycle(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        for generation in (2, 3, 4):
            wal.append(generation, "b%d" % generation, DIMS,
                       [(generation, 0, 1)], [float(generation)])
        assert wal.generations() == [2, 3, 4]
        assert len(wal) == 3
        assert wal.nbytes() > 0
        replayed = list(wal.replay())
        assert [r.generation for r in replayed] == [2, 3, 4]
        assert [r.batch_id for r in replayed] == ["b2", "b3", "b4"]
        assert wal.truncate_through(3) == 2
        assert wal.generations() == [4]

    def test_sweep_removes_tmp_debris(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(2, "b", DIMS, [(1, 1, 1)], [1.0])
        debris = os.path.join(wal.directory, "0000000000000009.wal.tmp.123")
        with open(debris, "wb") as handle:
            handle.write(b"torn")
        assert wal.sweep() == [os.path.basename(debris)]
        assert not os.path.exists(debris)
        assert wal.generations() == [2]

    def test_corrupt_record_refused_on_read(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(2, "b", DIMS, [(1, 1, 1)], [1.0])
        path = wal.path_for(2)
        with open(path, "r+b") as handle:
            handle.seek(6)
            byte = handle.read(1)
            handle.seek(6)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalCorruptError):
            wal.read(2)


# ---------------------------------------------------------------------------
# WAL-enabled CubeStore: visibility, idempotence, compaction
# ---------------------------------------------------------------------------
@pytest.fixture
def wal_store(tmp_path):
    CubeStore.build(base_relation(), tmp_path / "s", backend="local").close()
    store = CubeStore.open(tmp_path / "s", wal=True, compact_after=10_000)
    yield store
    store.close()


class TestWalStore:
    def test_delta_visible_and_oracle_exact(self, wal_store):
        delta = delta_relation(1)
        result = wal_store.append(delta, batch_id="b1")
        assert result.applied and result.batch_id == "b1"
        assert result.generation == 2
        everything = combined(base_relation(), delta)
        assert_store_matches(wal_store, everything)
        # point queries go through the merged delta view too
        cell = delta.rows[0][:2]
        assert wal_store.point(("A", "B"), cell, 1) == \
            oracle(everything, ("A", "B"), 1).get(tuple(cell))

    def test_duplicate_batch_acknowledged_not_reapplied(self, wal_store):
        delta = delta_relation(2)
        first = wal_store.append(delta, batch_id="dup")
        rows_after = wal_store.total_rows
        again = wal_store.append(delta, batch_id="dup")
        assert not again.applied
        assert again.generation == first.generation
        assert wal_store.total_rows == rows_after
        assert_store_matches(wal_store, combined(base_relation(), delta))

    def test_replay_after_reopen(self, tmp_path, wal_store):
        d1, d2 = delta_relation(3), delta_relation(4)
        wal_store.append(d1, batch_id="r1")
        wal_store.append(d2, batch_id="r2")
        wal_store.close()
        reopened = CubeStore.open(tmp_path / "s", wal=True,
                                  compact_after=10_000)
        try:
            assert reopened.recovery["wal_replayed"] == 2
            assert reopened.generation == 3
            assert_store_matches(reopened, combined(base_relation(), d1, d2))
            # idempotence survives the restart: the WAL remembers ids
            assert not reopened.append(d1, batch_id="r1").applied
        finally:
            reopened.close()

    def test_compaction_folds_and_truncates(self, tmp_path, wal_store):
        deltas = [delta_relation(s) for s in (5, 6, 7)]
        for i, delta in enumerate(deltas):
            wal_store.append(delta, batch_id="c%d" % i)
        generation = wal_store.generation
        everything = combined(base_relation(), *deltas)
        assert wal_store.compact() == 3
        assert wal_store.generation == generation  # compaction ≠ new data
        assert len(wal_store.wal) == 0
        assert wal_store.wal_stats()["pending_batches"] == 0
        assert_store_matches(wal_store, everything)
        # compacted batch ids stay deduplicated via the manifest window
        assert not wal_store.append(deltas[0], batch_id="c0").applied
        wal_store.close()
        # and the folded store equals a from-scratch rebuild, cell-exact
        rebuilt_dir = tmp_path / "rebuilt"
        rebuilt = CubeStore.build(everything, rebuilt_dir, backend="local")
        reopened = CubeStore.open(tmp_path / "s", wal=True)
        try:
            for cuboid in ((), ("A",), ("B", "C"), DIMS):
                assert reopened.query(cuboid, 1) == rebuilt.query(cuboid, 1)
        finally:
            rebuilt.close()
            reopened.close()

    def test_background_compaction_triggers(self, tmp_path):
        CubeStore.build(base_relation(), tmp_path / "bg",
                        backend="local").close()
        store = CubeStore.open(tmp_path / "bg", wal=True, compact_after=2)
        try:
            store.append(delta_relation(1), batch_id="a")
            store.append(delta_relation(2), batch_id="b")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if store.wal_stats()["pending_batches"] == 0:
                    break
                time.sleep(0.02)
            assert store.wal_stats()["pending_batches"] == 0
            assert_store_matches(store, combined(
                base_relation(), delta_relation(1), delta_relation(2)))
        finally:
            store.close()

    def test_plain_open_refuses_pending_wal(self, tmp_path, wal_store):
        wal_store.append(delta_relation(8), batch_id="p")
        wal_store.close()
        with pytest.raises(PlanError, match="WAL"):
            CubeStore.open(tmp_path / "s")

    def test_legacy_append_rejects_batch_id(self, tmp_path):
        CubeStore.build(base_relation(), tmp_path / "plain",
                        backend="local").close()
        store = CubeStore.open(tmp_path / "plain")
        try:
            with pytest.raises(PlanError, match="WAL"):
                store.append(delta_relation(1), batch_id="b")
            with pytest.raises(PlanError):
                store.compact()
        finally:
            store.close()

    def test_wal_batches_since(self, wal_store):
        d1, d2 = delta_relation(1), delta_relation(2)
        wal_store.append(d1, batch_id="w1")
        wal_store.append(d2, batch_id="w2")
        feed = wal_store.wal_batches_since(wal_store.generation - 2)
        assert not feed["truncated"]
        assert [b.batch_id for b in feed["batches"]] == ["w1", "w2"]
        newer = wal_store.wal_batches_since(wal_store.generation - 1)
        assert [b.batch_id for b in newer["batches"]] == ["w2"]
        stale = wal_store.wal_batches_since(0)
        assert stale["truncated"]


# ---------------------------------------------------------------------------
# Crash windows: SIGKILL at every chaos point, then recover
# ---------------------------------------------------------------------------
CRASH_CHILD = r"""
import os, sys
sys.path.insert(0, %(src)r)
from repro.data import Relation
from repro.serve import CubeStore

def delta_relation(seed, n=8):
    rows = [((seed + i) %% 3, (seed * 3 + i) %% 5, (seed + i) %% 2)
            for i in range(n)]
    return Relation(("A", "B", "C"), rows, [float(seed + i) for i in range(n)])

store = CubeStore.open(%(store)r, wal=True, compact_after=10_000)
store.append(delta_relation(1), batch_id="k1")
store.append(delta_relation(2), batch_id="k2")
store.compact()
os._exit(3)  # only reached if the chaos point never fired
"""


class TestCrashWindows:
    @pytest.mark.parametrize("point", [
        "wal.pre_publish", "wal.post_publish",
        "compact.staged", "compact.journalled",
    ])
    def test_sigkill_then_recover(self, tmp_path, point):
        directory = str(tmp_path / "crash")
        CubeStore.build(base_relation(), directory, backend="local").close()
        env = dict(os.environ)
        env["REPRO_INGEST_CHAOS_KILL"] = point
        child = subprocess.run(
            [sys.executable, "-c",
             CRASH_CHILD % {"src": _SRC, "store": directory}],
            env=env, capture_output=True, timeout=120)
        assert child.returncode == -9, child.stderr.decode()

        store = CubeStore.open(directory, wal=True, compact_after=10_000)
        try:
            d1, d2 = delta_relation(1), delta_relation(2)
            if point == "wal.pre_publish":
                # killed before the first record published: nothing applied,
                # the un-acked batch is safe to retry
                assert store.recovery["wal_replayed"] == 0
                assert store.append(d1, batch_id="k1").applied
                assert_store_matches(store, combined(base_relation(), d1))
            elif point == "wal.post_publish":
                # killed after publishing the first record: replay applies
                # it, and the client's retry is deduplicated
                assert store.recovery["wal_replayed"] == 1
                assert not store.append(d1, batch_id="k1").applied
                assert_store_matches(store, combined(base_relation(), d1))
            elif point == "compact.staged":
                # killed before the compaction journal committed: rollback,
                # both batches replay from the WAL, compaction re-runs
                assert not store.recovery["rolled_forward"]
                assert store.recovery["wal_replayed"] == 2
                assert store.compact() == 2
                assert_store_matches(store, combined(base_relation(), d1, d2))
            else:  # compact.journalled
                # killed after the journal committed: roll-forward finishes
                # the compaction, stale WAL records are pruned
                assert store.recovery["rolled_forward"]
                assert store.recovery["wal_pruned"] == 2
                assert store.wal_stats()["pending_batches"] == 0
                assert not store.append(d1, batch_id="k1").applied
                assert_store_matches(store, combined(base_relation(), d1, d2))
        finally:
            store.close()


_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")


# ---------------------------------------------------------------------------
# HTTP surface: duplicated POST /append, GET /wal, capability gating
# ---------------------------------------------------------------------------
def _post_append(url, relation, batch_id):
    body = json.dumps({
        "dims": list(relation.dims),
        "rows": [list(r) for r in relation.rows],
        "measures": list(relation.measures),
        "batch_id": batch_id,
    }).encode()
    request = Request(url + "/append", data=body,
                      headers={"Content-Type": "application/json"})
    with urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _get_json(url):
    with urlopen(url, timeout=10) as response:
        return json.loads(response.read())


class TestIngestHttp:
    @pytest.fixture
    def served(self, tmp_path):
        CubeStore.build(base_relation(), tmp_path / "s",
                        backend="local").close()
        store = CubeStore.open(tmp_path / "s", wal=True, compact_after=10_000)
        server = CubeServer(store)
        endpoint = server.serve_http(port=0)
        yield endpoint.url, server
        server.close()
        store.close()

    def test_duplicated_post_is_exactly_once(self, served):
        url, server = served
        delta = delta_relation(1)
        first = _post_append(url, delta, "http-dup")
        again = _post_append(url, delta, "http-dup")
        assert first["applied"] and not again["applied"]
        assert again["generation"] == first["generation"]
        everything = combined(base_relation(), delta)
        answer = _get_json(url + "/query?cuboid=A,B&minsup=1")
        got = {tuple(c["cell"]): (c["count"], c["sum"])
               for c in answer["cells"]}
        assert got == oracle(everything, ("A", "B"), 1)

    def test_wal_feed_over_http(self, served):
        url, _ = served
        _post_append(url, delta_relation(1), "feed-1")
        _post_append(url, delta_relation(2), "feed-2")
        health = _get_json(url + "/healthz")
        assert health["wal"]["enabled"]
        base = health["wal"]["base_generation"]
        feed = _get_json(url + "/wal?since=%d" % base)
        assert [b["batch_id"] for b in feed["batches"]] == ["feed-1", "feed-2"]

    def test_wal_store_requires_ingest_capable_backend(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setitem(
            backends.BACKENDS, "no-ingest",
            backends.BackendInfo("no-ingest", "test double",
                                 {"serve-fallback"}))
        CubeStore.build(base_relation(), tmp_path / "s",
                        backend="local").close()
        plain = CubeStore.open(tmp_path / "s")
        CubeServer(plain, fallback_backend="no-ingest").close()
        plain.close()
        store = CubeStore.open(tmp_path / "s", wal=True)
        try:
            with pytest.raises(PlanError, match="ingest"):
                CubeServer(store, fallback_backend="no-ingest")
        finally:
            store.close()

    def test_resolve_backend_gates_ingest(self):
        with pytest.raises(PlanError, match="ingest"):
            backends.resolve_backend("simulated", require={"ingest"})


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class _UpperBoundRng:
    def uniform(self, low, high):
        return high


class TestRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(attempts=5, base_s=0.1, cap_s=0.35,
                             rng=_UpperBoundRng(), sleep=lambda s: None)
        assert [policy.backoff_s(k) for k in range(4)] == \
            [0.1, 0.2, 0.35, 0.35]

    def test_pause_refuses_when_deadline_cannot_absorb(self):
        from repro.serve import Deadline

        slept = []
        policy = RetryPolicy(attempts=3, base_s=0.5, cap_s=0.5,
                             rng=_UpperBoundRng(), sleep=slept.append)
        clock = iter([0.0, 0.0, 0.1]).__next__
        deadline = Deadline(0.2, clock=clock)
        assert not policy.pause(0, deadline)
        assert slept == []
        assert policy.pause(0, None)
        assert slept == [0.5]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(PlanError):
            RetryPolicy(attempts=0)
        with pytest.raises(PlanError):
            RetryPolicy(base_s=-1)


# ---------------------------------------------------------------------------
# Router fan-out: retries, breaker consultation, anti-entropy repair
# ---------------------------------------------------------------------------
class _StubClient:
    """A scripted replica: each element of ``script`` answers one call."""

    def __init__(self, url, script):
        self.url = url
        self.script = list(script)
        self.calls = 0

    def post_json(self, path, payload):
        self.calls += 1
        action = self.script.pop(0) if self.script else "ok"
        if action == "fail":
            raise ReplicaError(self.url, "injected failure")
        if action == "reject":
            raise PlanError("injected rejection")
        return {"generation": 2, "applied": True, "batch_id":
                payload.get("batch_id"), "rows": len(payload["rows"])}

    def get_json(self, path):
        raise ReplicaError(self.url, "stub has no GET surface")


def make_stub_router(scripts, **kwargs):
    kwargs.setdefault("retry_policy", RetryPolicy(
        attempts=3, base_s=0.0, cap_s=0.0, sleep=lambda s: None))
    kwargs.setdefault("anti_entropy", False)
    router = CubeRouter([["http://stub-%d" % i] for i in range(len(scripts))],
                        dims=DIMS, **kwargs)
    for shard, script in enumerate(scripts):
        router.shards[shard][0] = _StubClient("http://stub-%d" % shard, script)
    return router


class TestRouterAppend:
    def test_transient_failures_are_retried_to_success(self):
        router = make_stub_router([["fail", "fail", "ok"]])
        try:
            summary = router.append(delta_relation(1), batch_id="retry-me")
            assert summary["applied"] == 1
            assert summary["batch_id"] == "retry-me"
            assert summary["outcomes"][0]["attempts"] == 3
            assert router.shards[0][0].calls == 3
        finally:
            router.close()

    def test_retry_budget_exhausted_is_honest(self):
        router = make_stub_router([["fail", "fail", "fail"]])
        try:
            with pytest.raises(ShardUnavailableError, match="safe to resubmit"):
                router.append(delta_relation(1), batch_id="doomed")
        finally:
            router.close()

    def test_permanent_rejection_is_not_retried(self):
        router = make_stub_router([["reject"]])
        try:
            with pytest.raises(ShardUnavailableError):
                router.append(delta_relation(1), batch_id="rejected")
            assert router.shards[0][0].calls == 1
        finally:
            router.close()

    def test_append_consults_the_circuit_breaker(self):
        """Satellite: the append path skips tripped replicas like the
        query path does, instead of hammering a dead box."""
        router = make_stub_router([["ok"]])
        try:
            breaker = router.breakers[(0, 0)]
            for _ in range(breaker.failure_threshold):
                breaker.record_failure()
            assert breaker.state == "open"
            with pytest.raises(ShardUnavailableError,
                               match="circuit breaker open"):
                router.append(delta_relation(1), batch_id="skipped")
            assert router.shards[0][0].calls == 0
        finally:
            router.close()

    def test_breaker_skip_leaves_healthy_sibling_serving(self):
        router = make_stub_router([["ok"]])
        try:
            stub = _StubClient("http://stub-0b", ["ok"])
            router.shards[0].append(stub)
            from repro.serve import CircuitBreaker

            router.breakers[(0, 1)] = CircuitBreaker(
                failure_threshold=1, reset_after_s=60.0)
            router.breakers[(0, 1)].record_failure()
            summary = router.append(delta_relation(1), batch_id="partial")
            assert summary["applied"] == 1
            skipped = [o for o in summary["outcomes"] if o.get("skipped")]
            assert len(skipped) == 1 and skipped[0]["replica"] == 1
        finally:
            router.close()


class TestAntiEntropy:
    def test_lagging_replica_is_repaired_from_sibling_wal(self, tmp_path):
        """Kill a replica, append through the router, restart the replica:
        the health sweep re-delivers the missed WAL batches and the two
        replicas converge to cell-exact equality."""
        import shutil

        CubeStore.build(base_relation(), tmp_path / "a",
                        backend="local").close()
        shutil.copytree(tmp_path / "a", tmp_path / "b")

        def serve(directory, port=0):
            store = CubeStore.open(directory, wal=True, compact_after=10_000)
            server = CubeServer(store)
            endpoint = server.serve_http(port=port)
            return store, server, endpoint

        store_a, server_a, ep_a = serve(tmp_path / "a")
        store_b, server_b, ep_b = serve(tmp_path / "b")
        port_b = ep_b.port
        router = CubeRouter([[ep_a.url, ep_b.url]], dims=DIMS,
                            retry_policy=RetryPolicy(
                                attempts=2, base_s=0.0, cap_s=0.0,
                                sleep=lambda s: None))
        try:
            # replica B goes dark; two batches land on A alone
            ep_b.close()
            server_b.close()
            store_b.close()
            d1, d2 = delta_relation(1), delta_relation(2)
            s1 = router.append(d1, batch_id="ae-1")
            s2 = router.append(d2, batch_id="ae-2")
            assert s1["applied"] == 1 and s2["applied"] == 1

            # B restarts on the same port, generations now skewed
            store_b, server_b, ep_b = serve(tmp_path / "b", port=port_b)
            assert store_b.generation < store_a.generation

            router.check_health()  # the sweep runs anti-entropy repair

            everything = combined(base_relation(), d1, d2)
            assert store_b.generation == store_a.generation
            assert_store_matches(store_b, everything)
            # a later append must not be confused by the repair
            assert not store_b.append(d1, batch_id="ae-1").applied
        finally:
            router.close()
            for closable in (server_a, store_a, server_b, store_b):
                closable.close()

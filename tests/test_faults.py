"""Fault injection and recovery: crashes, retries, stragglers.

The acceptance bar is replay idempotence — any seeded FaultPlan that
leaves at least one processor alive must yield the *exact* fault-free
cube (cell for cell against the naive oracle), with the recovery
telemetry showing that retries/reassignments actually happened.
"""

import pytest

from repro.cluster import (
    Cluster,
    CostModel,
    FaultPlan,
    NodeCrash,
    Slowdown,
    TaskExecution,
    TaskFailure,
    cluster1,
    homogeneous,
    run_dynamic,
    run_static,
)
from repro.core.naive import naive_iceberg_cube
from repro.core.stats import OpStats
from repro.errors import (
    ClusterDegradedError,
    ClusterError,
    ReproError,
    TaskRetryExhausted,
)
from repro.parallel import AHT, ASL, BPP, PT, RP

ALGO_CLASSES = [RP, BPP, ASL, PT, AHT]


def fault_free_makespan(algo_cls, relation, minsup=2, n=4):
    return algo_cls().run(relation, minsup=minsup, cluster_spec=cluster1(n)).makespan


class TestPlanValidation:
    def test_negative_crash_time_rejected(self):
        with pytest.raises(ClusterError):
            NodeCrash(0, -1.0)

    def test_speedup_masquerading_as_slowdown_rejected(self):
        with pytest.raises(ClusterError):
            Slowdown(0, 0.5)

    def test_failure_rate_bounds(self):
        with pytest.raises(ClusterError):
            FaultPlan(failure_rate=1.5)
        with pytest.raises(ClusterError):
            FaultPlan(max_retries=-1)

    def test_earliest_crash_wins(self):
        plan = FaultPlan(crashes=[NodeCrash(0, 5.0), NodeCrash(0, 2.0)])
        assert plan.crash_time(0) == 2.0
        assert plan.crash_time(1) is None

    def test_attempt_fails_is_deterministic(self):
        plan = FaultPlan(failure_rate=0.5, seed=3)
        draws = [plan.attempt_fails(t, a) for t in range(20) for a in range(3)]
        again = [plan.attempt_fails(t, a) for t in range(20) for a in range(3)]
        assert draws == again
        assert any(draws) and not all(draws)

    def test_backoff_is_exponential(self):
        plan = FaultPlan(backoff_s=0.1, backoff_factor=2.0)
        assert plan.backoff_seconds(1) == pytest.approx(0.1)
        assert plan.backoff_seconds(3) == pytest.approx(0.4)

    def test_random_plan_spares_keep_alive_nodes(self):
        plan = FaultPlan.random_plan(seed=5, n_processors=4, horizon=1.0,
                                     crash_fraction=1.0, keep_alive=1)
        assert len(plan.crashes) == 3


def execution(label, scan=100_000):
    stats = OpStats()
    stats.add_scan(scan)
    return TaskExecution(label, stats)


def make_cluster(n=4):
    return Cluster(homogeneous(n), CostModel())


class TestSchedulerRecovery:
    """Simulator-level semantics, independent of any cube algorithm."""

    def test_static_crash_redistributes_to_survivors(self):
        cluster = make_cluster(2)
        plan = FaultPlan(crashes=[NodeCrash(0, 1e-6)])
        result = run_static(
            cluster,
            [(0, "a"), (0, "b"), (1, "c")],
            lambda proc, task: execution(task),
            fault_plan=plan,
        )
        assert result.failed_processors == (0,)
        assert result.reassignments == 2  # "a" and "b" moved to node 1
        done = [e.label for e in result.schedule if "!" not in e.label]
        assert sorted(done) == ["a", "b", "c"]

    def test_mid_task_crash_charges_partial_work(self):
        cluster = make_cluster(2)
        baseline = run_static(make_cluster(1), [(0, "t")],
                              lambda p, t: execution(t)).makespan
        plan = FaultPlan(crashes=[NodeCrash(0, baseline / 2)])
        result = run_static(cluster, [(0, "t")], lambda p, t: execution(t),
                            fault_plan=plan)
        assert result.lost_work_seconds == pytest.approx(baseline / 2)
        assert cluster.processors[0].clock == pytest.approx(baseline / 2)

    def test_transient_failure_retries_and_charges_twice(self):
        cluster = make_cluster(1)
        plan = FaultPlan(failures=[TaskFailure(0, attempt=0)])
        clean = run_static(make_cluster(1), [(0, "t")],
                           lambda p, t: execution(t)).makespan
        result = run_static(cluster, [(0, "t")], lambda p, t: execution(t),
                            fault_plan=plan)
        assert result.retries == 1
        assert result.lost_work_seconds == pytest.approx(clean)
        # failed attempt + backoff + successful attempt
        assert result.makespan == pytest.approx(2 * clean + plan.backoff_seconds(1))

    def test_retry_exhaustion_escalates(self):
        cluster = make_cluster(1)
        plan = FaultPlan(failure_rate=1.0, max_retries=2)
        with pytest.raises(TaskRetryExhausted) as info:
            run_static(cluster, [(0, "t")], lambda p, t: execution(t),
                       fault_plan=plan)
        assert info.value.attempts == 3
        assert isinstance(info.value, ReproError)

    def test_all_nodes_crashing_degrades_cluster(self):
        cluster = make_cluster(2)
        plan = FaultPlan(crashes=[NodeCrash(0, 1e-9), NodeCrash(1, 1e-9)])
        with pytest.raises(ClusterDegradedError) as info:
            run_static(cluster, [(0, "a"), (1, "b")],
                       lambda p, t: execution(t), fault_plan=plan)
        assert sorted(info.value.failed_processors) == [0, 1]
        assert info.value.pending_tasks > 0

    def test_dynamic_crash_reassigns_via_policy(self):
        cluster = make_cluster(2)
        plan = FaultPlan(crashes=[NodeCrash(0, 1e-6)])
        result = run_dynamic(
            cluster,
            ["a", "b", "c"],
            lambda proc, pending: 0,
            lambda proc, task: execution(task),
            fault_plan=plan,
        )
        assert result.failed_processors == (0,)
        assert cluster.processors[1].tasks_run == 3

    def test_dynamic_all_dead_raises(self):
        cluster = make_cluster(2)
        plan = FaultPlan(crashes=[NodeCrash(0, 0.0), NodeCrash(1, 0.0)])
        with pytest.raises(ClusterDegradedError):
            run_dynamic(cluster, ["a"], lambda p, pending: 0,
                        lambda p, t: execution(t), fault_plan=plan)

    def test_straggler_scales_cpu_time(self):
        plan = FaultPlan(slowdowns=[Slowdown(0, 4.0)])
        slow_cluster = make_cluster(1)
        slow = run_static(slow_cluster, [(0, "t")], lambda p, t: execution(t),
                          fault_plan=plan)
        clean = run_static(make_cluster(1), [(0, "t")],
                           lambda p, t: execution(t), fault_plan=FaultPlan())
        assert slow.makespan == pytest.approx(4 * clean.makespan)

    def test_empty_plan_matches_fault_free_run_exactly(self):
        tasks = [(i % 3, "t%d" % i) for i in range(9)]
        plain_cluster = make_cluster(3)
        plain = run_static(plain_cluster, tasks, lambda p, t: execution(t))
        faulted_cluster = make_cluster(3)
        faulted = run_static(faulted_cluster, tasks, lambda p, t: execution(t),
                             fault_plan=FaultPlan())
        assert faulted.makespan == plain.makespan  # bit-identical
        assert faulted.retries == 0
        assert faulted.reassignments == 0
        assert faulted.lost_work_seconds == 0.0
        assert faulted.failed_processors == ()

    def test_degraded_makespan_ignores_dead_nodes(self):
        cluster = make_cluster(2)
        plan = FaultPlan(crashes=[NodeCrash(0, 1e-6)])
        result = run_static(cluster, [(0, "a"), (1, "b")],
                            lambda p, t: execution(t), fault_plan=plan)
        assert result.degraded_makespan == pytest.approx(
            cluster.processors[1].clock
        )


@pytest.mark.parametrize("algo_cls", ALGO_CLASSES)
class TestReplayIdempotence:
    """Injected faults must never change the cube — only the makespan."""

    def crash_plan(self, algo_cls, relation, minsup=2):
        """Crash node 0 mid-run so in-flight work is genuinely lost."""
        makespan = fault_free_makespan(algo_cls, relation, minsup=minsup)
        return FaultPlan(crashes=[NodeCrash(0, 0.3 * makespan)])

    def test_exact_under_mid_run_crash(self, algo_cls, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        plan = self.crash_plan(algo_cls, small_skewed)
        run = algo_cls().run(small_skewed, minsup=2, cluster_spec=cluster1(4),
                             fault_plan=plan)
        assert run.result.equals(expected), run.result.diff(expected)
        assert run.simulation.failed_processors == (0,)
        assert run.simulation.reassignments > 0

    def test_exact_under_transient_failures(self, algo_cls, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        plan = FaultPlan(failure_rate=0.2, max_retries=10, seed=13)
        run = algo_cls().run(small_skewed, minsup=2, cluster_spec=cluster1(4),
                             fault_plan=plan)
        assert run.result.equals(expected), run.result.diff(expected)
        assert run.simulation.retries > 0

    def test_exact_under_combined_faults(self, algo_cls, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        makespan = fault_free_makespan(algo_cls, small_skewed)
        plan = FaultPlan(
            crashes=[NodeCrash(0, 0.3 * makespan)],
            slowdowns=[Slowdown(2, 3.0)],
            failure_rate=0.1,
            max_retries=10,
            seed=11,
        )
        run = algo_cls().run(small_skewed, minsup=2, cluster_spec=cluster1(4),
                             fault_plan=plan)
        assert run.result.equals(expected), run.result.diff(expected)
        assert run.makespan > makespan

    def test_empty_plan_is_exact_with_zero_telemetry(self, algo_cls, small_skewed):
        clean = algo_cls().run(small_skewed, minsup=2, cluster_spec=cluster1(4))
        faulted = algo_cls().run(small_skewed, minsup=2, cluster_spec=cluster1(4),
                                 fault_plan=FaultPlan())
        assert faulted.result.equals(clean.result)
        assert faulted.makespan == clean.makespan  # bit-identical timing
        assert faulted.simulation.retries == 0
        assert faulted.simulation.reassignments == 0
        assert faulted.simulation.lost_work_seconds == 0.0

    def test_faulted_run_is_deterministic(self, algo_cls, small_skewed):
        plan_args = dict(crashes=[NodeCrash(1, 0.01)], failure_rate=0.1,
                         max_retries=10, seed=5)
        a = algo_cls().run(small_skewed, minsup=2, cluster_spec=cluster1(4),
                           fault_plan=FaultPlan(**plan_args))
        b = algo_cls().run(small_skewed, minsup=2, cluster_spec=cluster1(4),
                           fault_plan=FaultPlan(**plan_args))
        assert a.makespan == b.makespan
        assert a.result.equals(b.result)


class TestStragglerMitigation:
    def test_pt_absorbs_a_straggler(self, small_skewed):
        """Demand scheduling routes work away from the slow node, so a
        4x straggler must not cost anywhere near 4x."""
        base = fault_free_makespan(PT, small_skewed)
        plan = FaultPlan(slowdowns=[Slowdown(0, 4.0)])
        slow = PT().run(small_skewed, minsup=2, cluster_spec=cluster1(4),
                        fault_plan=plan)
        assert slow.result.equals(
            naive_iceberg_cube(small_skewed, minsup=2)
        )
        assert slow.makespan < 3.0 * base

    def test_static_rp_eats_the_straggler_whole(self, small_skewed):
        """RP's fixed assignment cannot route around the slow node, so it
        degrades more than PT under the same straggler."""
        plan = FaultPlan(slowdowns=[Slowdown(0, 4.0)])
        rp_base = fault_free_makespan(RP, small_skewed)
        pt_base = fault_free_makespan(PT, small_skewed)
        rp = RP().run(small_skewed, minsup=2, cluster_spec=cluster1(4),
                      fault_plan=plan)
        pt = PT().run(small_skewed, minsup=2, cluster_spec=cluster1(4),
                      fault_plan=plan)
        assert rp.makespan / rp_base > pt.makespan / pt_base


class TestCliFaults:
    def test_faults_option_reports_recovery(self, capsys):
        from repro.cli import main

        code = main(["cube", "--weather", "400", "--dims", "4", "--minsup", "2",
                     "--algorithm", "pt", "--processors", "4",
                     "--faults", "crash:0@0.01,rate=0.1,retries=10,seed=7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovery" in out
        assert "failed nodes" in out

    def test_bad_faults_spec_is_a_clean_error(self, capsys):
        from repro.cli import main

        code = main(["cube", "--weather", "100", "--minsup", "2",
                     "--faults", "bogus:1"])
        out = capsys.readouterr().out
        assert code == 2
        assert "bad --faults directive" in out

    def test_parse_fault_spec_round_trip(self):
        from repro.cli import parse_fault_spec

        plan = parse_fault_spec("crash:0@0.5,slow:1x4@0.2,rate=0.25,"
                                "retries=5,backoff=0.01,seed=9")
        assert plan.crash_time(0) == 0.5
        assert plan.slowdown_factor(1, 0.3) == 4.0
        assert plan.slowdown_factor(1, 0.1) == 1.0
        assert plan.failure_rate == 0.25
        assert plan.max_retries == 5
        assert plan.backoff_s == 0.01
        assert plan.seed == 9

"""MapReduce backend smoke test: out-of-core build under a hard cap (CI job).

Three acts covering the acceptance criteria of the ``repro.mr``
subsystem end-to-end, on real worker processes:

1. **Oracle gate** — at verification scale the MapReduce cube must
   match the naive single-process oracle cell-for-cell, and the store
   it materializes must be byte-identical to the classic
   ``CubeStore.build`` output.
2. **Out-of-core build** — a ~1M-row streamed weather relation is
   materialized with the combiner held to a budget more than 10x
   smaller than the relation's in-memory footprint, under an
   ``RLIMIT_AS`` address-space cap that would kill the run if any stage
   materialized the input.  The shuffle must externalize (spill bytes
   >= 10x the budget) and the finished store must reopen clean with
   exact totals.
3. **Spill-crash sweep** — map and reduce workers are SIGKILLed
   mid-spill and mid-merge; re-execution from durable run files must
   produce a byte-identical store, orphaned attempt files must be
   swept, and no temp droppings may survive anywhere in the output.

Run:  PYTHONPATH=src python tests/smoke_mapreduce.py
"""

import glob
import math
import os
import sys
import tempfile

from repro.cluster.faults import FaultPlan, NodeCrash
from repro.core.naive import naive_iceberg_cube
from repro.data import zipf_relation
from repro.data.stream import stream_from_relation, weather_stream
from repro.data.weather import baseline_dims
from repro.mr import MIN_MEMORY_BUDGET, mapreduce_materialize, \
    mapreduce_iceberg_cube
from repro.online.materialize import leaf_cuboids
from repro.serve.store import CubeStore, _leaf_filename

DIMS = ("d0", "d1", "d2", "d3")

#: The big act's streamed input; the combiner budget is derived from
#: the measured footprint so the >=10x gap holds at any SMOKE_MR_ROWS.
BIG_ROWS = int(os.environ.get("SMOKE_MR_ROWS", "1000000"))


def leaf_files(directory, dims):
    out = {}
    for leaf in leaf_cuboids(dims):
        with open(os.path.join(directory, _leaf_filename(leaf)), "rb") as fh:
            out[leaf] = fh.read()
    return out


def act_one_oracle_gate(tmp):
    relation = zipf_relation(4_000, [8, 6, 5, 4], skew=1.0, seed=31,
                             dims=DIMS)
    stream = stream_from_relation(relation, split_rows=900)

    result = mapreduce_iceberg_cube(stream, minsup=3, workers=2)
    oracle = naive_iceberg_cube(relation, minsup=3)
    diff = result.diff(oracle, tolerance=1e-9, limit=5)
    assert not diff, diff

    classic = CubeStore.build(relation, os.path.join(tmp, "classic"),
                              backend="local")
    mr = mapreduce_materialize(stream, os.path.join(tmp, "mr"), workers=2)
    assert mr.total_rows == classic.total_rows
    assert math.isclose(mr.total_measure, classic.total_measure, abs_tol=1e-9)
    assert leaf_files(os.path.join(tmp, "mr"), DIMS) == \
        leaf_files(os.path.join(tmp, "classic"), DIMS)
    print("act 1: %d-cell cube oracle-exact; store byte-identical to the "
          "classic build" % result.total_cells())


def _address_space_cap(headroom_bytes):
    """Cap RLIMIT_AS at current VmSize + headroom (Linux only)."""
    try:
        import resource

        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmSize:"):
                    vm_kib = int(line.split()[1])
                    break
            else:
                return None
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        cap = vm_kib * 1024 + headroom_bytes
        resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
        return (soft, hard), cap
    except (ImportError, OSError, ValueError):
        return None


def act_two_out_of_core(tmp):
    dims = baseline_dims(5)
    stream = weather_stream(BIG_ROWS, dims=dims, seed=2001,
                            split_rows=131_072)

    # The footprint a full materialization would need, extrapolated
    # from one generated chunk -- the budget must be >10x smaller.
    rows, measures = next(iter(stream.iter_chunks()))
    per_row = (sum(sys.getsizeof(r) for r in rows[:512]) / 512) + 8 + 24
    footprint = int(per_row * BIG_ROWS)
    budget = min(8 << 20, max(MIN_MEMORY_BUDGET, footprint // 12))
    assert footprint > 10 * budget, (footprint, budget)
    del rows, measures

    # Any stage that materializes the input blows this address cap.
    restore = _address_space_cap(headroom_bytes=192 << 20)
    try:
        store = mapreduce_materialize(
            stream, os.path.join(tmp, "big"), workers=2, reducers=2,
            memory_budget=budget)
    finally:
        if restore:
            import resource

            resource.setrlimit(resource.RLIMIT_AS, restore[0])
    stats = store.mr_stats
    assert stats.rows == BIG_ROWS, stats.rows
    assert store.total_rows == BIG_ROWS
    assert stats.spill_bytes >= 10 * budget, stats.spill_bytes
    assert stats.runs_merged >= stats.runs > 0

    reopened = CubeStore.open(os.path.join(tmp, "big"), verify="quick")
    assert reopened.total_rows == BIG_ROWS
    print("act 2: %d rows (~%d MB materialized) through a %.1f MB combiner "
          "budget%s -- %d spills, %.0f MB shuffled, store reopens clean"
          % (BIG_ROWS, footprint >> 20, budget / (1 << 20),
             " under RLIMIT_AS" if restore else "",
             stats.spills, stats.spill_bytes / (1 << 20)))


def act_three_spill_crash_sweep(tmp):
    relation = zipf_relation(4_000, [8, 6, 5, 4], skew=1.0, seed=37,
                             dims=DIMS)
    stream = stream_from_relation(relation, split_rows=500)  # 8 map tasks

    plain = mapreduce_materialize(
        stream, os.path.join(tmp, "plain"), workers=2, reducers=2,
        memory_budget=MIN_MEMORY_BUDGET)
    # Kill map attempts 0 and 2 after their first durable spill, and
    # reduce partition 0 (task id 8) after its first committed leaf.
    faults = FaultPlan(crashes=[NodeCrash(0, 0.0), NodeCrash(2, 0.0),
                                NodeCrash(8, 0.0)], seed=3)
    faulty = mapreduce_materialize(
        stream, os.path.join(tmp, "faulty"), workers=2, reducers=2,
        memory_budget=MIN_MEMORY_BUDGET, fault_plan=faults, batch_timeout=30)

    stats = faulty.mr_stats
    assert stats.map_recovery.worker_crashes >= 1, stats.map_recovery
    assert stats.reduce_recovery.worker_crashes >= 1, stats.reduce_recovery
    assert stats.orphan_files_swept > 0, "killed attempts left no orphans?"
    assert leaf_files(os.path.join(tmp, "faulty"), DIMS) == \
        leaf_files(os.path.join(tmp, "plain"), DIMS)
    strays = [p for p in glob.glob(os.path.join(tmp, "faulty", "**", "*"),
                                   recursive=True) if ".tmp." in p]
    assert not strays, strays
    CubeStore.open(os.path.join(tmp, "faulty"), verify="full")
    print("act 3: SIGKILLed 2 mappers + 1 reducer; %d orphan files swept, "
          "store byte-identical to the fault-free run at verify=full"
          % stats.orphan_files_swept)


def main():
    with tempfile.TemporaryDirectory(prefix="repro-mr-smoke-") as tmp:
        act_one_oracle_gate(tmp)
        act_two_out_of_core(tmp)
        act_three_spill_crash_sweep(tmp)
    print("PASS: mapreduce smoke survived the oracle gate, an out-of-core "
          "build under RLIMIT_AS and the spill-crash sweep")
    return 0


if __name__ == "__main__":
    sys.exit(main())

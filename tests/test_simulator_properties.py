"""Property tests for the cluster simulator's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, CostModel, TaskExecution, homogeneous, run_dynamic, run_static
from repro.cluster.spec import PII_266, PIII_500, ClusterSpec
from repro.core.stats import OpStats

TASK_SIZES = st.lists(st.integers(1, 50), min_size=1, max_size=30)


def execution(label, scan):
    stats = OpStats()
    stats.add_scan(scan)
    return TaskExecution(label, stats)


class TestInvariants:
    @given(TASK_SIZES, st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_clock_equals_busy_plus_overheads(self, sizes, n):
        cluster = Cluster(homogeneous(n), CostModel())
        run_dynamic(
            cluster,
            list(range(len(sizes))),
            lambda proc, pending: 0,
            lambda proc, task: execution(str(task), sizes[task] * 1000),
        )
        for proc in cluster.processors:
            assert proc.clock >= proc.busy_time - 1e-12
            assert proc.clock >= 0.0

    @given(TASK_SIZES, st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_every_task_runs_exactly_once(self, sizes, n):
        cluster = Cluster(homogeneous(n), CostModel())
        result = run_dynamic(
            cluster,
            list(range(len(sizes))),
            lambda proc, pending: len(pending) - 1,
            lambda proc, task: execution(str(task), sizes[task] * 1000),
        )
        labels = [entry.label for entry in result.schedule]
        assert sorted(labels) == sorted(str(i) for i in range(len(sizes)))
        assert sum(p.tasks_run for p in cluster.processors) == len(sizes)

    @given(TASK_SIZES)
    @settings(max_examples=40, deadline=None)
    def test_more_processors_never_slower_fifo(self, sizes):
        def makespan(n):
            cluster = Cluster(homogeneous(n), CostModel())
            return run_dynamic(
                cluster,
                list(range(len(sizes))),
                lambda proc, pending: 0,
                lambda proc, task: execution(str(task), sizes[task] * 1000),
            ).makespan

        assert makespan(4) <= makespan(1) + 1e-9

    @given(TASK_SIZES)
    @settings(max_examples=40, deadline=None)
    def test_dynamic_never_beats_total_work_over_n(self, sizes):
        n = 3
        cluster = Cluster(homogeneous(n), CostModel())
        result = run_dynamic(
            cluster,
            list(range(len(sizes))),
            lambda proc, pending: 0,
            lambda proc, task: execution(str(task), sizes[task] * 1000),
        )
        total_busy = sum(p.busy_time for p in cluster.processors)
        assert result.makespan >= total_busy / n - 1e-9

    @given(TASK_SIZES)
    @settings(max_examples=40, deadline=None)
    def test_schedule_entries_are_consistent(self, sizes):
        cluster = Cluster(homogeneous(2), CostModel())
        result = run_static(
            cluster,
            [(i % 2, i) for i in range(len(sizes))],
            lambda proc, task: execution(str(task), sizes[task] * 1000),
        )
        for entry in result.schedule:
            assert entry.end >= entry.start
            assert entry.cpu >= 0 and entry.io >= 0 and entry.comm >= 0
        # Per-processor entries never overlap and appear in time order.
        for index in (0, 1):
            own = [e for e in result.schedule if e.processor == index]
            for a, b in zip(own, own[1:]):
                assert b.start >= a.end - 1e-9

    @given(st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_slow_machine_takes_proportionally_longer(self, scan_k):
        model = CostModel()
        fast = Cluster(ClusterSpec([PIII_500]), model)
        slow = Cluster(ClusterSpec([PII_266]), model)
        for cluster in (fast, slow):
            run_static(cluster, [(0, "t")],
                       lambda proc, task: execution(task, scan_k * 10_000))
        ratio = slow.processors[0].cpu_time / fast.processors[0].cpu_time
        assert abs(ratio - PIII_500.speed / PII_266.speed) < 1e-9

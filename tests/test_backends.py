"""Backend registry: names, capability flags, and error surfaces."""

import io

import pytest

from repro.backends import BACKENDS, backend_names, resolve_backend
from repro.cli import main
from repro.data import zipf_relation
from repro.errors import PlanError
from repro.serve.server import CubeServer
from repro.serve.store import CubeStore


def test_every_registered_backend_resolves():
    for name in BACKENDS:
        info = resolve_backend(name)
        assert info.name == name
        assert info.capabilities
        assert info.summary


def test_backend_names_sorted_and_filterable():
    assert backend_names() == sorted(BACKENDS)
    assert backend_names("kernels") == ["local"]
    assert "simulated" not in backend_names("streaming")
    assert set(backend_names("cube")) == set(BACKENDS)


def test_unknown_backend_lists_valid_choices():
    with pytest.raises(PlanError) as err:
        resolve_backend("nosuch")
    message = str(err.value)
    assert "nosuch" in message
    for name in BACKENDS:
        assert name in message


def test_missing_capability_names_supporting_backends():
    with pytest.raises(PlanError) as err:
        resolve_backend("simulated", require={"streaming"})
    message = str(err.value)
    assert "streaming" in message
    assert "mapreduce" in message


def test_cli_rejects_unknown_backend():
    out = io.StringIO()
    code = main(["cube", "--weather", "50", "--backend", "bogus"], out=out)
    assert code == 2
    text = out.getvalue()
    assert "bogus" in text
    for name in BACKENDS:
        assert name in text


def test_server_validates_fallback_backend(tmp_path):
    relation = zipf_relation(200, [6, 4], skew=0.8, seed=3)
    store = CubeStore.build(relation, str(tmp_path / "store"))
    with pytest.raises(PlanError):
        CubeServer(store, relation, fallback_backend="bogus")
    # the simulated backend cannot serve fallback computations
    with pytest.raises(PlanError) as err:
        CubeServer(store, relation, fallback_backend="simulated")
    assert "local" in str(err.value)
    server = CubeServer(store, relation, fallback_backend="mapreduce")
    assert server.fallback_backend == "mapreduce"

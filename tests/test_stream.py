"""Streaming relation layer: chunked splits, determinism, peak memory."""

import pickle
import tracemalloc

import pytest

from repro.data import (
    BASELINE_DIMS,
    zipf_relation,
)
from repro.data.stream import (
    DEFAULT_CHUNK_ROWS,
    MaterializedSplit,
    RelationStream,
    SyntheticSplit,
    stream_from_relation,
    uniform_stream,
    weather_stream,
    zipf_stream,
)
from repro.data.weather import _BY_NAME
from repro.errors import PlanError, SchemaError


def test_chunks_are_bounded_and_complete():
    stream = zipf_stream(10_000, [16, 8, 6], skew=1.0, seed=3,
                         split_rows=3_000)
    assert stream.n_rows == 10_000
    assert len(stream) == 10_000
    assert [split.n_rows for split in stream.splits] == [3000, 3000, 3000, 1000]
    total = 0
    for rows, measures in stream.iter_chunks(chunk_rows=512):
        assert 0 < len(rows) <= 512
        assert len(rows) == len(measures)
        total += len(rows)
    assert total == 10_000


def test_stream_is_deterministic_per_seed():
    a = zipf_stream(5_000, [12, 8, 4], skew=0.9, seed=42, split_rows=1_024)
    b = zipf_stream(5_000, [12, 8, 4], skew=0.9, seed=42, split_rows=1_024)
    ra, rb = a.materialize(), b.materialize()
    assert ra.rows == rb.rows
    assert ra.measures == rb.measures
    c = zipf_stream(5_000, [12, 8, 4], skew=0.9, seed=43, split_rows=1_024)
    assert c.materialize().rows != ra.rows


def test_splits_pickle_and_regenerate_identically():
    stream = uniform_stream(4_000, [10, 10], seed=7, split_rows=1_000)
    for split in stream.splits:
        clone = pickle.loads(pickle.dumps(split))
        assert list(clone.iter_chunks()) == list(split.iter_chunks())
    assert len(pickle.dumps(stream.splits[0])) < 1_000  # params, not rows


def test_codes_stay_below_declared_bounds():
    stream = zipf_stream(2_000, [7, 5, 3], skew=1.2, seed=1)
    bounds = stream.cardinality_list()
    assert bounds == [7, 5, 3]
    for rows, _measures in stream.iter_chunks():
        for row in rows:
            assert all(code < bound for code, bound in zip(row, bounds))


def test_weather_stream_matches_declared_dimensions():
    stream = weather_stream(3_000, seed=11)
    assert stream.dims == BASELINE_DIMS
    for name in stream.dims:
        assert stream.cardinalities[name] == _BY_NAME[name][0]
    relation = stream.materialize()
    assert len(relation) == 3_000
    named = weather_stream(1_000, dims=("hour", "day"), seed=11)
    assert named.dims == ("hour", "day")
    with pytest.raises(ValueError):
        weather_stream(100, dims=("no_such_dimension",))


def test_stream_from_relation_round_trips():
    relation = zipf_relation(2_500, [9, 6, 4], skew=0.8, seed=5)
    stream = stream_from_relation(relation, split_rows=700)
    back = stream.materialize()
    assert back.rows == relation.rows
    assert back.measures == relation.measures
    assert back.dims == relation.dims
    # projection reorders and restricts the schema
    sub = stream_from_relation(relation, dims=relation.dims[:2][::-1])
    projected = sub.materialize()
    assert projected.dims == relation.dims[:2][::-1]
    assert projected.rows[0] == (relation.rows[0][1], relation.rows[0][0])
    # bounds are max code + 1, safe for key packing
    for name in sub.dims:
        position = sub.dims.index(name)
        top = max(row[position] for row in projected.rows)
        assert sub.cardinalities[name] == top + 1


def test_stream_schema_validation():
    with pytest.raises(SchemaError):
        RelationStream(("A", "A"), [], {"A": 2})
    with pytest.raises(SchemaError):
        RelationStream(("A", "B"), [], {"A": 2})
    with pytest.raises(SchemaError):
        MaterializedSplit(0, [(1,)], [])
    with pytest.raises(PlanError):
        zipf_stream(-1, [4])
    with pytest.raises(PlanError):
        zipf_stream(10, [4], split_rows=0)


def test_empty_stream():
    stream = zipf_stream(0, [4, 4], seed=0)
    assert stream.n_rows == 0
    assert list(stream.iter_chunks()) == []


def test_streaming_never_materializes_the_relation():
    """The satellite's contract: iterating a stream peaks at chunk-sized
    allocations, far below the materialized relation's footprint."""
    stream = zipf_stream(120_000, [32, 16, 8, 8], skew=0.8, seed=9,
                         split_rows=30_000)
    tracemalloc.start()
    seen = 0
    for rows, _measures in stream.iter_chunks():
        assert len(rows) <= DEFAULT_CHUNK_ROWS
        seen += len(rows)
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert seen == 120_000

    tracemalloc.start()
    relation = stream.materialize()
    _, materialized_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(relation) == 120_000
    # Chunked iteration must stay well under full materialization; 4x
    # is a loose floor (in practice the gap is >20x).
    assert streaming_peak * 4 < materialized_peak

"""Cube lattice structure and the affinity relations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.lattice import (
    ALL,
    CubeLattice,
    common_prefix_length,
    is_prefix,
    subset_positions,
)

DIMS = ("A", "B", "C", "D")


class TestLattice:
    def test_size_is_2_to_the_d(self):
        assert len(CubeLattice(DIMS)) == 16
        assert len(CubeLattice(("X",))) == 2

    def test_cuboids_top_down_and_complete(self):
        lattice = CubeLattice(DIMS)
        cuboids = lattice.cuboids()
        assert cuboids[0] == DIMS
        assert cuboids[-1] == ALL
        assert len(cuboids) == 16
        sizes = [len(c) for c in cuboids]
        assert sizes == sorted(sizes, reverse=True)

    def test_cuboids_exclude_all(self):
        assert ALL not in CubeLattice(DIMS).cuboids(include_all=False)

    def test_levels_partition_the_lattice(self):
        levels = CubeLattice(DIMS).levels()
        assert [len(l) for l in levels] == [1, 4, 6, 4, 1]

    def test_parents_add_one_dimension(self):
        lattice = CubeLattice(DIMS)
        assert sorted(lattice.parents(("A", "C"))) == [("A", "B", "C"), ("A", "C", "D")]
        assert lattice.parents(ALL) == [("A",), ("B",), ("C",), ("D",)]

    def test_children_remove_one_dimension(self):
        lattice = CubeLattice(DIMS)
        assert lattice.children(("A", "C"))== [("C",), ("A",)]

    def test_canonical_reorders_to_schema(self):
        lattice = CubeLattice(DIMS)
        assert lattice.canonical(("C", "A")) == ("A", "C")
        with pytest.raises(SchemaError):
            lattice.canonical(("Z",))

    def test_duplicate_dims_rejected(self):
        with pytest.raises(SchemaError):
            CubeLattice(("A", "A"))


class TestAffinityRelations:
    def test_is_prefix(self):
        assert is_prefix(("A",), ("A", "B", "C"))
        assert is_prefix(("A", "B"), ("A", "B"))
        assert is_prefix((), ("A",))
        assert not is_prefix(("B",), ("A", "B"))
        assert not is_prefix(("A", "B", "C"), ("A", "B"))

    def test_subset_positions(self):
        assert subset_positions(("A", "C"), ("A", "B", "C")) == (0, 2)
        assert subset_positions(("C", "A"), ("A", "B", "C")) == (2, 0)
        assert subset_positions(("A", "Z"), ("A", "B")) is None
        assert subset_positions((), ("A",)) == ()

    def test_common_prefix_length(self):
        assert common_prefix_length(("A", "B", "C"), ("A", "B", "D")) == 2
        assert common_prefix_length(("B",), ("A", "B")) == 0
        assert common_prefix_length((), ("A",)) == 0

    @given(st.lists(st.sampled_from(DIMS), max_size=4, unique=True),
           st.lists(st.sampled_from(DIMS), max_size=4, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_prefix_implies_subset(self, a, b):
        a, b = tuple(a), tuple(b)
        if is_prefix(a, b):
            assert subset_positions(a, b) is not None

"""Overlap: longest-prefix parent selection and partitioned sub-sorts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import naive_iceberg_cube
from repro.core.overlap import cuboid_order, overlap_iceberg_cube, plan_overlap
from repro.core.pipesort import pipesort_iceberg_cube
from repro.data import Relation, uniform_relation


class TestPlan:
    def test_root_has_no_parent(self):
        plan = plan_overlap(("A", "B", "C"), {d: 4 for d in "ABC"}, 100)
        assert plan[("A", "B", "C")] == (None, 0)

    def test_longest_prefix_parent_preferred(self):
        plan = plan_overlap(("A", "B", "C", "D"), {d: 4 for d in "ABCD"}, 1000)
        # ABC shares its whole self as a prefix of ABCD's order.
        parent, shared = plan[("A", "B", "C")]
        assert parent == ("A", "B", "C", "D")
        assert shared == 3
        # AC's candidates: ABC (prefix "A", len 1) and ACD (prefix "AC", 2).
        parent, shared = plan[("A", "C")]
        assert parent == ("A", "C", "D")
        assert shared == 2

    def test_smallest_breaks_prefix_ties(self):
        cards = {"A": 2, "B": 100, "C": 3}
        plan = plan_overlap(("A", "B", "C"), cards, 10**6)
        # ("B",): parents AB (prefix 0... order of AB is A,B so prefix of
        # (B,) is 0) and BC (order B,C -> prefix 1) -> BC wins on prefix.
        parent, shared = plan[("B",)]
        assert parent == ("B", "C")
        assert shared == 1

    def test_cuboid_order_is_schema_order(self):
        assert cuboid_order(("C", "A"), ("A", "B", "C")) == ("A", "C")


class TestExecution:
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    def test_matches_naive(self, small_skewed, minsup):
        expected = naive_iceberg_cube(small_skewed, minsup=minsup)
        got, _stats, _plan = overlap_iceberg_cube(small_skewed, minsup=minsup)
        assert got.equals(expected), got.diff(expected)

    def test_sales_example(self, sales):
        got, _stats, _plan = overlap_iceberg_cube(sales)
        assert got.equals(naive_iceberg_cube(sales))

    def test_cheaper_sorting_than_pipesort(self):
        rel = uniform_relation(800, [6, 5, 4, 3], seed=3)
        _, overlap_stats, _ = overlap_iceberg_cube(rel)
        _, pipesort_stats, _ = pipesort_iceberg_cube(rel)
        assert overlap_stats.sort_units < pipesort_stats.sort_units

    def test_tracks_peak_intermediates(self, small_uniform):
        _got, stats, _plan = overlap_iceberg_cube(small_uniform)
        assert stats.peak_items > 0

    @given(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
                 max_size=50),
        st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_naive(self, rows, minsup):
        relation = Relation(("A", "B", "C"), rows, [1.0] * len(rows))
        expected = naive_iceberg_cube(relation, minsup=minsup)
        got, _stats, _plan = overlap_iceberg_cube(relation, minsup=minsup)
        assert got.equals(expected)

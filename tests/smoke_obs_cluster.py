"""Observability cluster smoke test: one trace, one scrape (CI job).

A 2-shard x 2-replica cluster — each replica a REAL ``repro-cube
serve`` subprocess started with ``--trace-out`` so observability is
installed in-process — fronted by an in-process :class:`CubeRouter`
under :func:`repro.obs.installed`.  The acceptance criteria of the
distributed-tracing and federation tier, asserted end-to-end:

1. **Flood** — 200 Zipf-weighted iceberg queries stream through the
   router, all oracle-exact.
2. **One trace id across processes** — a cross-shard ``cube()``
   produces replica-side ``serve.cube`` and ``store.query`` spans that
   carry the *router's* trace id, with ``serve.cube`` parenting
   directly under the router's ``router.cube`` span.
3. **One merged trace file** — ``collect_trace`` writes a single
   Chrome/Perfetto JSON with one process track per node (router plus
   every replica), loadable and self-describing.
4. **Federation adds up** — the router's federated ``/metrics`` totals
   for ``repro_server_requests_total`` equal the sum of the per-replica
   scrapes, every sample labelled with its shard/replica.
5. **RED + lag visible** — ``/healthz`` carries per-shard
   rate/errors/duration summaries and the per-replica generation-lag
   gauge reads zero on a healthy cluster.
6. **Tracing stays near-free** — the kernelbench obs-overhead gate
   (instrumented/plain wall-time ratio) holds under its 5% target on a
   reduced workload.

Run:  PYTHONPATH=src python tests/smoke_obs_cluster.py
"""

import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
from urllib.request import urlopen

import repro.obs as obs
from repro.bench.kernelbench import (
    CARDINALITIES,
    HAS_NUMPY,
    OBS_OVERHEAD_TARGET,
    _obs_overhead_ratio,
)
from repro.core.naive import naive_cuboid
from repro.data import zipf_relation
from repro.lattice.lattice import CubeLattice
from repro.obs.metrics import parse_prometheus
from repro.serve import CubeRouter, CubeStore

DIMS = ("A", "B", "C", "D")
N_SHARDS, N_REPLICAS = 2, 2
N_QUERIES = 200
SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def spawn_replica(root, directory, shard, replica):
    """One real serve subprocess with observability installed."""
    env = dict(os.environ, PYTHONPATH=SRC)
    trace_out = os.path.join(root, "replica-%d-%d.json" % (shard, replica))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", directory,
         "--shard", "%d/%d" % (shard, N_SHARDS), "--port", "0",
         "--trace-out", trace_out],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    for _ in range(40):
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                "replica died during startup (shard %d)" % shard)
        if line.startswith("listening on "):
            return proc, line.split()[2]
    raise AssertionError("replica never reported its URL")


def sum_requests(families):
    """Total of every ``repro_server_requests_total`` sample."""
    samples = families.get("repro_server_requests_total",
                           {}).get("samples", ())
    return sum(value for _name, _labels, value in samples)


def main():
    root = tempfile.mkdtemp(prefix="obs-cluster-smoke-")
    base = zipf_relation(500, dims=DIMS, cardinalities=(4, 5, 6, 7),
                         skew=1.0, seed=29)

    processes, urls = {}, []
    for shard in range(N_SHARDS):
        built = os.path.join(root, "build-%d" % shard)
        CubeStore.build(base, built, backend="local",
                        shard=(shard, N_SHARDS)).close()
        replica_urls = []
        for replica in range(N_REPLICAS):
            directory = os.path.join(root, "shard-%d-r%d" % (shard, replica))
            shutil.copytree(built, directory)
            proc, url = spawn_replica(root, directory, shard, replica)
            processes[(shard, replica)] = proc
            replica_urls.append(url)
        urls.append(replica_urls)
    print("cluster up: %d shards x %d replicas, all traced (pids %s)"
          % (N_SHARDS, N_REPLICAS,
             sorted(p.pid for p in processes.values())))

    with obs.installed() as active:
        router = CubeRouter(urls, timeout_s=10.0, slow_query_s=30.0)
        lattice = CubeLattice(DIMS)
        cuboids = list(lattice.cuboids(include_all=False)) + [()]
        weights = [1.0 / (rank + 1) for rank in range(len(cuboids))]
        rng = random.Random(41)

        # -- 1. flood: 200 Zipf-weighted queries, oracle-exact ----------
        wrong = 0
        for _ in range(N_QUERIES):
            cuboid = rng.choices(cuboids, weights)[0]
            minsup = rng.randint(1, 4)
            answer = router.query(cuboid, minsup=minsup)
            oracle = {cell: agg
                      for cell, agg in naive_cuboid(base, cuboid).items()
                      if agg[0] >= minsup}
            wrong += answer.cells != oracle
        assert not wrong, "%d wrong answers in the flood" % wrong
        print("flood: %d queries oracle-exact through the traced router"
              % N_QUERIES)

        # -- 2. one cross-shard cube == one trace id everywhere ---------
        answer = router.cube(minsup=2)
        assert answer.cuboids, "cube() answered nothing"
        cube_span = next(s for s in reversed(active.tracer.spans())
                         if s.name == "router.cube")
        trace_id = cube_span.trace_id
        replica_payloads = []
        shards_joined = set()
        for (shard, replica), _proc in sorted(processes.items()):
            with urlopen(urls[shard][replica] + "/trace?since=0") as resp:
                payload = json.loads(resp.read())
            assert payload["enabled"] is True, (shard, replica)
            replica_payloads.append(
                ("shard%d/replica%d" % (shard, replica), payload))
            joined = [s for s in payload["spans"]
                      if s["trace_id"] == trace_id]
            if not joined:
                continue  # cube() fans out to ONE replica per shard
            by_name = {}
            for span in joined:
                by_name.setdefault(span["name"], span)
            serve_span = by_name["serve.cube"]
            assert serve_span["parent_id"] == cube_span.span_id, \
                "serve.cube did not parent under router.cube"
            assert "store.query" in by_name, \
                "store scan missing from the cube trace"
            assert by_name["store.query"]["parent_id"] == \
                serve_span["span_id"]
            shards_joined.add(shard)
        assert shards_joined == set(range(N_SHARDS)), \
            "shards in the cube trace: %s" % sorted(shards_joined)
        print("trace: cube() trace %s spans router -> serve.cube -> "
              "store.query on every shard" % trace_id)

        # -- 3. one merged Chrome trace, one track per node -------------
        trace_path = os.path.join(root, "cluster-trace.json")
        merged = router.collect_trace(path=trace_path)
        with open(trace_path) as handle:
            on_disk = json.load(handle)
        assert on_disk["traceEvents"], "merged trace file is empty"
        tracks = sorted(event["args"]["name"]
                        for event in merged["traceEvents"]
                        if event["name"] == "process_name")
        expected = sorted(["router"] + [
            "shard%d/replica%d" % (shard, replica)
            for shard in range(N_SHARDS) for replica in range(N_REPLICAS)])
        assert tracks == expected, tracks
        assert merged["otherData"]["disabled_processes"] == []
        cross = [event for event in merged["traceEvents"]
                 if event.get("ph") == "X"
                 and event.get("args", {}).get("trace_id") == trace_id]
        assert len({event["pid"] for event in cross}) >= 1 + N_SHARDS, \
            "cube trace should span the router and one replica per shard"
        print("trace: merged file has %d process tracks, %d events (%s)"
              % (len(tracks), len(merged["traceEvents"]), trace_path))

        # -- 4. federated /metrics totals == sum of replica scrapes -----
        direct_total = 0.0
        for shard in range(N_SHARDS):
            for replica in range(N_REPLICAS):
                with urlopen(urls[shard][replica] + "/metrics") as resp:
                    direct_total += sum_requests(
                        parse_prometheus(resp.read().decode()))
        federated = parse_prometheus(router.federated_metrics())
        federated_total = sum_requests(federated)
        assert federated_total == direct_total, \
            "federated %s != direct %s" % (federated_total, direct_total)
        for _name, labels, _value in federated[
                "repro_server_requests_total"]["samples"]:
            assert labels["shard"] in {"0", "1"}, labels
            assert labels["replica"] in {"0", "1"}, labels
        print("federation: repro_server_requests_total %d == sum of %d "
              "per-replica scrapes" % (federated_total,
                                       N_SHARDS * N_REPLICAS))

        # -- 5. RED summaries and replica lag -----------------------------
        health = router.health()
        assert health["status"] == "ok", health["status"]
        for shard in range(N_SHARDS):
            red = health["shards"][shard]["red"]
            assert red["requests"] > 0, red
            assert red["p95_s"] >= 0.0, red
        # check_health (inside health()) refreshed the lag gauges, so
        # read them off a scrape taken *after* it.
        after_health = parse_prometheus(router.registry.to_prometheus())
        lag_samples = [
            (labels, value) for _name, labels, value in after_health.get(
                "repro_router_replica_lag", {}).get("samples", ())]
        assert len(lag_samples) == N_SHARDS * N_REPLICAS, lag_samples
        assert all(value == 0.0 for _labels, value in lag_samples), \
            "healthy cluster reported generation lag: %s" % lag_samples
        print("health: RED summaries on every shard, replica lag 0 "
              "across %d replicas" % len(lag_samples))

        router.close()

    for proc in processes.values():
        if proc.poll() is None:
            proc.terminate()
            proc.wait()
    shutil.rmtree(root, ignore_errors=True)

    # -- 6. obs overhead gate (reduced workload) ------------------------
    kernel = "numpy" if HAS_NUMPY else "columnar"
    ratio = _obs_overhead_ratio(
        zipf_relation(4000, CARDINALITIES[6], skew=1.0, seed=29),
        minsup=2, kernel=kernel, repeats=3)
    assert ratio <= OBS_OVERHEAD_TARGET, \
        "obs overhead ratio %.3f exceeds %.2f" % (ratio, OBS_OVERHEAD_TARGET)
    print("overhead: instrumented/plain ratio %.3f <= %.2f (%s kernel)"
          % (ratio, OBS_OVERHEAD_TARGET, kernel))

    print("OBS CLUSTER SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())

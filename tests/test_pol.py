"""Algorithm POL: exact final answers, progressive refinement, stepping."""

import pytest

from repro.cluster import cluster1, cluster2, cluster3
from repro.core.naive import naive_cuboid
from repro.data import zipf_relation
from repro.errors import PlanError
from repro.online import POL, initial_assignment, wrap_order


def expected_cells(relation, dims, minsup):
    return {
        cell: agg
        for cell, agg in naive_cuboid(relation, dims).items()
        if agg[0] >= minsup
    }


@pytest.fixture
def online_relation():
    return zipf_relation(3000, [12, 8, 6], skew=0.8, seed=21)


class TestTaskStructure:
    def test_wrap_order(self):
        assert wrap_order(1, 4) == [1, 2, 3, 0]
        assert wrap_order(0, 1) == [0]

    def test_initial_assignment_matches_table_5_1(self):
        assignment = initial_assignment(4)
        assert assignment[1] == [(1, 1), (1, 2), (1, 3), (1, 0)]
        all_tasks = [t for tasks in assignment.values() for t in tasks]
        assert len(set(all_tasks)) == 16


class TestCorrectness:
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    @pytest.mark.parametrize("n_processors", [1, 3, 4])
    def test_final_answer_exact(self, online_relation, minsup, n_processors):
        run = POL(buffer_size=250).run(
            online_relation, minsup=minsup, cluster_spec=cluster1(n_processors)
        )
        assert run.cells == expected_cells(online_relation, online_relation.dims, minsup)

    def test_sum_values_exact(self, online_relation):
        run = POL(buffer_size=500).run(online_relation, minsup=1,
                                       cluster_spec=cluster1(4))
        expected = expected_cells(online_relation, online_relation.dims, 1)
        for cell, (count, value) in run.cells.items():
            assert value == pytest.approx(expected[cell][1])

    def test_dims_subset(self, online_relation):
        run = POL(buffer_size=400).run(online_relation, dims=("A", "C"), minsup=2,
                                       cluster_spec=cluster1(3))
        assert run.cells == expected_cells(online_relation, ("A", "C"), 2)

    def test_buffer_size_validated(self):
        with pytest.raises(PlanError):
            POL(buffer_size=0)


class TestProgressiveRefinement:
    def test_snapshots_track_fractions(self, online_relation):
        run = POL(buffer_size=250).run(online_relation, minsup=2,
                                       cluster_spec=cluster1(4))
        fractions = [s.fraction for s in run.snapshots]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        assert len(run.snapshots) == run.extras["steps"]

    def test_cells_seen_monotone(self, online_relation):
        run = POL(buffer_size=250).run(online_relation, minsup=2,
                                       cluster_spec=cluster1(4))
        seen = [s.cells_seen for s in run.snapshots]
        assert seen == sorted(seen)

    def test_final_snapshot_matches_answer(self, online_relation):
        run = POL(buffer_size=250).run(online_relation, minsup=2,
                                       cluster_spec=cluster1(4))
        assert run.snapshots[-1].qualifying == len(run.cells)

    def test_estimates_kept_when_requested(self, online_relation):
        run = POL(buffer_size=500, keep_estimates=True).run(
            online_relation, minsup=2, cluster_spec=cluster1(2)
        )
        snapshot = run.snapshots[0]
        assert snapshot.estimates
        assert all(est >= 2 for est in snapshot.estimates.values())

    def test_early_stop_processes_prefix_only(self, online_relation):
        run = POL(buffer_size=250).run(online_relation, minsup=1,
                                       cluster_spec=cluster1(4), max_steps=1)
        assert run.extras["steps"] == 1
        assert run.extras["processed"] == 4 * 250
        total = sum(count for count, _v in run.cells.values())
        assert total == 4 * 250


class TestCommunicationModel:
    def test_myrinet_beats_ethernet_on_same_cpus(self, online_relation):
        slow_net = POL(buffer_size=250).run(online_relation, minsup=2,
                                            cluster_spec=cluster2(4))
        fast_net = POL(buffer_size=250).run(online_relation, minsup=2,
                                            cluster_spec=cluster3(4))
        assert fast_net.cells == slow_net.cells
        assert fast_net.makespan < slow_net.makespan

    def test_offloading_happens_with_uneven_boundaries(self):
        # Heavy skew concentrates cells in one skip-list partition; other
        # processors offload (labels marked '*').
        rel = zipf_relation(2400, [30, 5], skew=1.6, seed=9)
        run = POL(buffer_size=200).run(rel, minsup=1, cluster_spec=cluster1(4))
        labels = [e.label for e in run.simulation.schedule]
        assert any(label.endswith("*") for label in labels)
        assert run.cells == expected_cells(rel, rel.dims, 1)

    def test_single_processor_has_no_comm_tasks(self, online_relation):
        run = POL(buffer_size=500).run(online_relation, minsup=2,
                                       cluster_spec=cluster1(1))
        comm = sum(e.comm for e in run.simulation.schedule)
        assert comm == 0.0

"""The observability layer: stats, metrics, tracing, install switch."""

import json
import re
import threading

import pytest

import repro.obs as obs
from repro.core.buc import buc_iceberg_cube
from repro.obs.metrics import (
    HISTOGRAM_SAMPLE_WINDOW,
    MetricsRegistry,
    default_buckets,
    escape_label_value,
    format_value,
)
from repro.obs.stats import percentile
from repro.obs.trace import SIM_PID, WALL_PID, Tracer


@pytest.fixture(autouse=True)
def _no_leaked_install():
    """Every test starts and ends with instrumentation off."""
    obs.uninstall()
    yield
    obs.uninstall()


class TestPercentile:
    def test_nearest_rank(self):
        data = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(data, 50) == 5
        assert percentile(data, 95) == 10
        assert percentile(data, 10) == 1
        assert percentile(data, 11) == 2

    def test_edges(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 50, default=None) is None
        assert percentile([7], 0) == 7
        assert percentile([7], 100) == 7
        assert percentile([1, 2, 3], 0) == 1
        assert percentile([1, 2, 3], 100) == 3

    def test_float_p(self):
        # The seed implementation crashed on float p (float list index).
        assert percentile([1, 2, 3, 4], 99.9) == 4
        assert percentile([1, 2, 3, 4], 25.0) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], -1)
        with pytest.raises(ValueError):
            percentile([1], 100.1)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_labels_make_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", labelnames=("source",))
        counter.inc(source="cache")
        counter.inc(3, source="store")
        assert counter.value(source="cache") == 1
        assert counter.value(source="store") == 3
        assert counter.value(source="compute") == 0.0
        assert counter.series() == {("cache",): 1, ("store",): 3}

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("n_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self):
        counter = MetricsRegistry().counter("n_total", labelnames=("a",))
        with pytest.raises(ValueError):
            counter.inc(b=1)
        with pytest.raises(ValueError):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("pending")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6


class TestHistogram:
    def test_observe_and_summary(self):
        histogram = MetricsRegistry().histogram("latency_seconds")
        for value in (0.001, 0.002, 0.003, 0.004):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(0.01)
        assert summary["p50"] == 0.002
        assert summary["p95"] == 0.004

    def test_empty_summary(self):
        histogram = MetricsRegistry().histogram("latency_seconds")
        assert histogram.summary() == {
            "count": 0, "sum": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_sample_window_bounded(self):
        histogram = MetricsRegistry().histogram("x_seconds",
                                                buckets=(1.0, 2.0))
        for i in range(HISTOGRAM_SAMPLE_WINDOW + 50):
            histogram.observe(0.5)
        summary = histogram.summary()
        assert summary["count"] == HISTOGRAM_SAMPLE_WINDOW + 50

    def test_render_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("d_seconds", buckets=(1.0, 10.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            histogram.observe(value)
        text = registry.to_prometheus()
        assert 'd_seconds_bucket{le="1.0"} 2' in text
        assert 'd_seconds_bucket{le="10.0"} 3' in text
        assert 'd_seconds_bucket{le="+Inf"} 4' in text
        assert "d_seconds_count 4" in text

    def test_default_buckets_sorted(self):
        buckets = default_buckets()
        assert list(buckets) == sorted(buckets)
        assert len(buckets) == 16


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("n_total", "help")
        b = registry.counter("n_total")
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("n_total")
        with pytest.raises(ValueError):
            registry.gauge("n_total")
        with pytest.raises(ValueError):
            registry.counter("n_total", labelnames=("x",))

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labelnames=("bad-label",))

    def test_to_json(self):
        registry = MetricsRegistry()
        registry.counter("n_total", "N.", ("kind",)).inc(2, kind="x")
        payload = registry.to_json()
        assert payload["n_total"]["kind"] == "counter"
        assert payload["n_total"]["series"] == {"kind=x": 2}
        json.dumps(payload)  # exporter contract: JSON-clean

    def test_label_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total", labelnames=("path",))
        counter.inc(path='a\\b"c\nd')
        text = registry.to_prometheus()
        assert r'path="a\\b\"c\nd"' in text

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert escape_label_value("plain") == "plain"


def lint_prometheus(text):
    """A minimal exposition-format linter; returns declared families."""
    assert text.endswith("\n")
    types = {}
    for line in text.splitlines():
        if not line or line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in {"counter", "gauge", "histogram"}
            assert name not in types, "duplicate TYPE for %s" % name
            types[name] = kind
            continue
        match = re.match(
            r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$', line)
        assert match, "unparseable sample line: %r" % line
        name = match.group(1)
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in types or (family in types
                                 and types[family] == "histogram"), line
        float(match.group(3))  # values must parse
    return types


class TestPrometheusExposition:
    def test_lints_clean(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "Help with \\ and \n newline.").inc()
        registry.gauge("b", labelnames=("x",)).set(1.5, x="y")
        registry.histogram("c_seconds").observe(0.1)
        types = lint_prometheus(registry.to_prometheus())
        assert types == {"a_total": "counter", "b": "gauge",
                         "c_seconds": "histogram"}


class TestTracer:
    def test_span_nesting_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.span_id != outer.span_id
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration

    def test_attrs_and_events(self):
        tracer = Tracer()
        with tracer.span("work", rows=10) as span:
            span.set(cells=3)
            span.event("milestone", step=1)
        span, = tracer.spans()
        assert span.attrs == {"rows": 10, "cells": 3}
        name, ts, attrs = span.events[0]
        assert name == "milestone" and attrs == {"step": 1}
        assert span.start <= ts <= span.start + span.duration

    def test_standalone_event_is_instant(self):
        tracer = Tracer()
        tracer.event("tick", n=1)
        span, = tracer.spans()
        assert span.duration is None
        assert span.attrs == {"n": 1}

    def test_error_exit_flagged(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        span, = tracer.spans()
        assert span.attrs["error"] is True

    def test_bounded_buffer_evicts_oldest(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            with tracer.span("s%d" % i):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_add_span_records_sim_time(self):
        tracer = Tracer()
        tracer.add_span("T[AB]", 1.5, 0.25, tid="p3", attrs={"cpu_s": 0.2})
        span, = tracer.spans()
        assert span.clock == "sim"
        assert span.start == 1.5 and span.duration == 0.25
        assert span.tid == "p3"

    def test_name_filter(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.spans("b")] == ["b"]

    def test_threads_get_separate_stacks(self):
        tracer = Tracer()
        seen = []

        def worker():
            with tracer.span("child"):
                seen.append(tracer.current_span().parent_id)

        with tracer.span("main-span"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker's span must NOT nest under the main thread's span.
        assert seen == [None]

    def test_bad_max_spans(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestChromeTrace:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", rows=5):
            with tracer.span("inner"):
                pass
        tracer.add_span("T[A]", 2.0, 0.5, tid="p0")
        tracer.event("blip")
        path = tmp_path / "trace.json"
        exported = tracer.export_chrome(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(exported))
        events = loaded["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e.get("args", {}).get("name")) for e in meta}
        assert ("process_name", "wall clock") in names
        assert ("process_name", "simulated cluster") in names

        complete = {e["name"]: e for e in events if e["ph"] == "X"}
        assert complete["T[A]"]["pid"] == SIM_PID
        assert complete["T[A]"]["ts"] == pytest.approx(2.0 * 1e6)
        assert complete["T[A]"]["dur"] == pytest.approx(0.5 * 1e6)
        assert complete["outer"]["pid"] == WALL_PID
        assert complete["outer"]["args"]["rows"] == 5
        # Parent linkage survives the export.
        assert complete["inner"]["args"]["parent_span_id"] == \
            complete["outer"]["args"]["span_id"]
        # ts/dur are consistent: the child sits inside the parent.
        assert complete["inner"]["ts"] >= complete["outer"]["ts"]
        instants = [e for e in events if e["ph"] == "i"]
        assert any(e["name"] == "blip" for e in instants)
        assert loaded["otherData"]["dropped_spans"] == 0

    def test_nonjson_attrs_coerced(self):
        tracer = Tracer()
        with tracer.span("x", leaf=("a", "b"), obj=object()):
            pass
        trace = tracer.chrome_trace()
        json.dumps(trace)  # must not raise


class TestInstallApi:
    def test_off_by_default(self):
        assert obs.current() is None
        span = obs.span("anything")
        assert not span
        with span as inner:
            inner.set(a=1).event("e")  # all absorbed
        obs.event("nothing")  # no-op, no error

    def test_install_uninstall(self):
        active = obs.install()
        assert obs.current() is active
        with obs.span("s") as span:
            assert span
        assert len(active.tracer.spans()) == 1
        obs.uninstall()
        assert obs.current() is None

    def test_installed_restores_previous(self):
        outer = obs.install()
        with obs.installed() as inner:
            assert obs.current() is inner
            assert inner is not outer
        assert obs.current() is outer

    def test_install_accepts_custom_parts(self):
        registry = MetricsRegistry()
        tracer = Tracer(max_spans=7)
        active = obs.install(registry=registry, tracer=tracer)
        assert active.registry is registry
        assert active.tracer is tracer


class TestBucInstrumentation:
    def _relation(self):
        from repro.data.synthetic import uniform_relation

        return uniform_relation(300, [4, 4, 4], seed=3)

    def test_cuboid_spans_recorded(self):
        relation = self._relation()
        with obs.installed() as active:
            result, _stats, _writer = buc_iceberg_cube(
                relation, relation.dims, minsup=2, breadth_first=True)
        task_spans = active.tracer.spans("buc.task")
        assert len(task_spans) == 1
        cuboid_spans = active.tracer.spans("buc.cuboid")
        # 2^3 - 1 = 7 non-all cuboids in a 3-dim lattice.
        assert len(cuboid_spans) == 7
        by_name = {s.attrs["cuboid"]: s.attrs["cells"]
                   for s in cuboid_spans}
        for cuboid, cells in result.cuboids.items():
            if cuboid:
                assert by_name["/".join(cuboid)] == len(cells)

    def test_cells_identical_instrumented_or_not(self):
        relation = self._relation()
        plain = buc_iceberg_cube(relation, relation.dims, minsup=2)[0]
        with obs.installed():
            traced = buc_iceberg_cube(relation, relation.dims, minsup=2)[0]
        assert traced.equals(plain)


class TestSimulatorInstrumentation:
    def _run(self):
        from repro.cluster import cluster1
        from repro.parallel.pt import PT
        from repro.data.synthetic import uniform_relation

        relation = uniform_relation(300, [5, 5, 5], seed=9)
        return PT().run(relation, minsup=2, cluster_spec=cluster1(2))

    def test_sim_figures_bit_identical(self):
        plain = self._run()
        with obs.installed():
            traced = self._run()
        assert traced.makespan == plain.makespan
        assert traced.result.equals(plain.result)

    def test_task_spans_on_sim_clock_with_opstats(self):
        with obs.installed() as active:
            run = self._run()
        sim_spans = [s for s in active.tracer.spans() if s.clock == "sim"]
        assert sim_spans
        for span in sim_spans:
            assert span.attrs["machine"]
            assert span.attrs["cpu_s"] >= 0.0
            assert "opstats_read_tuples" in span.attrs
            # Simulated spans end within the simulated makespan.
            assert span.start + span.duration <= run.makespan + 1e-9
        tasks = active.registry.get("repro_sim_tasks_total")
        assert sum(tasks.series().values()) == len(sim_spans)
        wrapper, = active.tracer.spans("sim.run")
        assert wrapper.attrs["tasks"] == len(sim_spans)
        assert wrapper.attrs["makespan"] == run.makespan


class TestLocalBackendInstrumentation:
    def test_local_cube_span(self):
        from repro.data.synthetic import uniform_relation
        from repro.parallel.local import multiprocess_iceberg_cube

        relation = uniform_relation(300, [4, 4, 4], seed=5)
        with obs.installed() as active:
            result = multiprocess_iceberg_cube(relation, minsup=2, workers=1)
        span, = active.tracer.spans("local.cube")
        assert span.attrs["rows"] == 300
        assert span.attrs["cells"] == result.total_cells()


class TestServeMetricsAgreement:
    def test_bump_backed_by_registry(self):
        from repro.serve.telemetry import ServerTelemetry

        telemetry = ServerTelemetry()
        telemetry.bump("shed")
        telemetry.bump("shed")
        telemetry.bump("deadline_exceeded")
        counts = telemetry.event_counts()
        assert counts == {"shed": 2, "deadline_exceeded": 1}
        assert all(isinstance(v, int) for v in counts.values())
        text = telemetry.registry.to_prometheus()
        assert 'repro_server_events_total{event="shed"} 2' in text

    def test_record_lands_in_both_views(self):
        from repro.serve.telemetry import ServerTelemetry

        telemetry = ServerTelemetry()
        telemetry.record(("a",), 1, "cache", 0.002)
        telemetry.record(("a",), 1, "store", 0.004)
        summary = telemetry.summary()
        assert summary["queries"] == 2
        requests = telemetry.registry.get("repro_server_requests_total")
        assert sum(requests.series().values()) == 2
        lint_prometheus(telemetry.registry.to_prometheus())

    def test_telemetry_joins_installed_registry(self):
        from repro.serve.telemetry import ServerTelemetry

        with obs.installed() as active:
            telemetry = ServerTelemetry()
            assert telemetry.registry is active.registry


class TestServerMetricsEndpoint:
    def test_metrics_counts_match_stats(self, tmp_path):
        import urllib.request
        from repro.data.synthetic import uniform_relation
        from repro.serve import CubeServer, CubeStore

        relation = uniform_relation(300, [4, 4, 4], seed=2)
        store = CubeStore.build(relation, tmp_path / "store", backend="local")
        server = CubeServer(store, cache_size=8)
        endpoint = server.serve_http(host="127.0.0.1", port=0)
        try:
            for i in range(6):
                url = "%s/query?cuboid=%s&minsup=1" % (
                    endpoint.url, store.dims[i % len(store.dims)])
                with urllib.request.urlopen(url) as response:
                    json.loads(response.read())
            with urllib.request.urlopen(endpoint.url + "/metrics") as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain")
                text = response.read().decode()
            with urllib.request.urlopen(endpoint.url + "/stats") as response:
                stats = json.loads(response.read())
        finally:
            server.close()
            store.close()
        lint_prometheus(text)
        served = sum(
            int(float(line.rsplit(" ", 1)[1]))
            for line in text.splitlines()
            if line.startswith("repro_server_requests_total{"))
        assert served == stats["telemetry"]["queries"] == 6

"""Synthetic generators: determinism, cardinalities, skew."""

import pytest

from repro.data.synthetic import dense_relation, uniform_relation, zipf_relation


class TestUniform:
    def test_shape_and_determinism(self):
        a = uniform_relation(200, [4, 7], seed=3)
        b = uniform_relation(200, [4, 7], seed=3)
        assert a.rows == b.rows
        assert a.measures == b.measures
        assert a.dims == ("A", "B")

    def test_codes_within_cardinality(self):
        rel = uniform_relation(500, [3, 9], seed=1)
        assert max(r[0] for r in rel.rows) < 3
        assert max(r[1] for r in rel.rows) < 9

    def test_declared_cardinalities_attached(self):
        rel = uniform_relation(10, [3, 9], seed=1)
        assert rel.cardinality("B") == 9  # declared, even if unseen

    def test_custom_dim_names(self):
        rel = uniform_relation(5, [2, 2], seed=0, dims=("x", "y"))
        assert rel.dims == ("x", "y")

    def test_dim_name_count_validated(self):
        with pytest.raises(ValueError):
            uniform_relation(5, [2, 2], dims=("only",))

    def test_generated_names_beyond_z(self):
        rel = uniform_relation(1, [2] * 28, seed=0)
        assert rel.dims[0] == "A"
        assert rel.dims[26] == "D26"


class TestZipf:
    def test_zero_skew_is_roughly_uniform(self):
        rel = zipf_relation(4000, [4], skew=0.0, seed=5)
        counts = [0] * 4
        for row in rel.rows:
            counts[row[0]] += 1
        assert max(counts) < 2 * min(counts)

    def test_high_skew_concentrates_on_low_codes(self):
        rel = zipf_relation(4000, [50], skew=1.5, seed=5)
        low = sum(1 for row in rel.rows if row[0] < 5)
        assert low > 0.6 * len(rel)

    def test_per_dimension_skews(self):
        rel = zipf_relation(3000, [20, 20], skew=[0.0, 1.8], seed=9)
        flat = sum(1 for r in rel.rows if r[0] == 0) / len(rel)
        steep = sum(1 for r in rel.rows if r[1] == 0) / len(rel)
        assert steep > 3 * flat

    def test_skew_count_validated(self):
        with pytest.raises(ValueError):
            zipf_relation(10, [5, 5], skew=[1.0])

    def test_invalid_cardinality_rejected(self):
        with pytest.raises(ValueError):
            zipf_relation(10, [0], skew=1.0)

    def test_determinism(self):
        a = zipf_relation(100, [6, 4], skew=0.8, seed=2)
        b = zipf_relation(100, [6, 4], skew=0.8, seed=2)
        assert a.rows == b.rows


class TestDense:
    def test_dense_cube_is_actually_dense(self):
        rel = dense_relation(2000, 3, cardinality=4, seed=1)
        # 64 possible cells, 2000 tuples: every cell well populated.
        cells = {row for row in rel.rows}
        assert len(cells) == 4 ** 3


class TestCorrelated:
    def test_determinism_and_shape(self):
        from repro.data.synthetic import correlated_relation

        a = correlated_relation(200, [10, 8, 6], correlation=0.7, seed=4)
        b = correlated_relation(200, [10, 8, 6], correlation=0.7, seed=4)
        assert a.rows == b.rows
        assert a.dims == ("A", "B", "C")

    def test_zero_correlation_equals_independent_draws(self):
        from repro.data.synthetic import correlated_relation
        from repro.core.naive import naive_cuboid

        independent = correlated_relation(3000, [15, 12, 10], correlation=0.0, seed=9)
        tied = correlated_relation(3000, [15, 12, 10], correlation=1.0, seed=9)
        # Full functional dependence: every B and C is a function of A,
        # so the 3-dim cuboid has no more cells than A alone.
        assert len(naive_cuboid(tied, tied.dims)) == len(naive_cuboid(tied, ("A",)))
        assert len(naive_cuboid(independent, independent.dims)) > 3 * len(
            naive_cuboid(tied, tied.dims)
        )

    def test_correlation_monotonically_shrinks_the_cube(self):
        from repro.data.synthetic import correlated_relation
        from repro.core.naive import naive_cuboid

        counts = []
        for rho in (0.0, 0.6, 0.95):
            rel = correlated_relation(2000, [20, 15, 10], correlation=rho, seed=2)
            counts.append(len(naive_cuboid(rel, rel.dims)))
        assert counts[0] > counts[1] > counts[2]

    def test_invalid_correlation_rejected(self):
        import pytest
        from repro.data.synthetic import correlated_relation

        with pytest.raises(ValueError):
            correlated_relation(10, [4], correlation=1.5)

    def test_codes_within_cardinality(self):
        from repro.data.synthetic import correlated_relation

        rel = correlated_relation(500, [7, 5, 3], correlation=0.9, seed=1)
        for row in rel.rows:
            assert row[0] < 7 and row[1] < 5 and row[2] < 3

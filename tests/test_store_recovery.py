"""Crash-safety and corruption-recovery tests for the CubeStore.

Covers the manifest-v2 integrity surface: per-leaf checksums, the
journalled two-phase append (roll-forward / roll-back on reopen),
orphan sweeping, and salvage of damaged leaves from the covering root
leaf.  The byte-level chaos here is what tests/smoke_chaos.py runs
exhaustively at every crash point.
"""

import json
import os

import pytest

from repro.data import zipf_relation
from repro.errors import PlanError, StoreCorruptError
from repro.serve import CubeStore
from repro.serve.store import JOURNAL, JOURNAL_FORMAT, MANIFEST, STAGED_SUFFIX


@pytest.fixture
def store_dir(small_skewed, tmp_path):
    directory = str(tmp_path / "store")
    store = CubeStore.build(small_skewed, directory)
    store.close()
    return directory


def _oracle(directory, cuboid, minsup=1):
    with CubeStore.open(directory, verify="off") as store:
        return store.query(cuboid, minsup=minsup)


def _leaf_path(directory, store, leaf):
    return os.path.join(directory, store._entries[leaf]["file"])


class TestVerifyLevels:
    def test_verify_level_validated(self, store_dir):
        with pytest.raises(PlanError):
            CubeStore.open(store_dir, verify="paranoid")

    def test_clean_store_opens_at_every_level(self, store_dir):
        for level in ("off", "quick", "full"):
            with CubeStore.open(store_dir, verify=level) as store:
                assert store.recovery["salvaged"] == []
                assert not store.recovery["rolled_forward"]

    def test_manifest_carries_checksums(self, store_dir):
        with open(os.path.join(store_dir, MANIFEST)) as fh:
            manifest = json.load(fh)
        for entry in manifest["leaves"]:
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] > 0


class TestLeafDamage:
    def test_truncated_leaf_salvaged_from_root(self, small_skewed, store_dir):
        with CubeStore.open(store_dir, verify="off") as store:
            victim = next(leaf for leaf in store.leaves
                          if leaf != tuple(store.dims))
            expected = store.query(victim, minsup=2)
            path = _leaf_path(store_dir, store, victim)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])

        with CubeStore.open(store_dir, verify="quick") as store:
            assert victim in [tuple(s) for s in store.recovery["salvaged"]]
            assert store.query(victim, minsup=2) == expected

    def test_byte_flip_needs_full_verify(self, store_dir):
        with CubeStore.open(store_dir, verify="off") as store:
            victim = next(leaf for leaf in store.leaves
                          if leaf != tuple(store.dims))
            expected = store.query(victim)
            path = _leaf_path(store_dir, store, victim)
        with open(path, "r+b") as fh:
            fh.seek(10)
            byte = fh.read(1)
            fh.seek(10)
            fh.write(bytes([byte[0] ^ 0xFF]))

        # Same size, so the quick check misses it...
        with CubeStore.open(store_dir, verify="quick") as store:
            assert store.recovery["salvaged"] == []
        # ...but the full hash catches and salvages it.
        with CubeStore.open(store_dir, verify="full") as store:
            assert victim in [tuple(s) for s in store.recovery["salvaged"]]
            assert store.query(victim) == expected

    def test_missing_leaf_salvaged(self, store_dir):
        with CubeStore.open(store_dir, verify="off") as store:
            victim = next(leaf for leaf in store.leaves
                          if leaf != tuple(store.dims))
            expected = store.query(victim)
            os.unlink(_leaf_path(store_dir, store, victim))
        with CubeStore.open(store_dir, verify="quick") as store:
            assert store.query(victim) == expected

    def test_salvage_disabled_raises_precisely(self, store_dir):
        with CubeStore.open(store_dir, verify="off") as store:
            victim = next(leaf for leaf in store.leaves
                          if leaf != tuple(store.dims))
            path = _leaf_path(store_dir, store, victim)
        os.truncate(path, 5)
        with pytest.raises(StoreCorruptError) as exc_info:
            CubeStore.open(store_dir, verify="quick", salvage=False)
        assert exc_info.value.leaf == victim
        assert "truncated" in exc_info.value.reason

    def test_damaged_root_leaf_is_fatal(self, store_dir):
        with CubeStore.open(store_dir, verify="off") as store:
            root = tuple(store.dims)
            path = _leaf_path(store_dir, store, root)
        os.truncate(path, 3)
        with pytest.raises(StoreCorruptError) as exc_info:
            CubeStore.open(store_dir, verify="quick")
        assert "rebuild the store" in str(exc_info.value)


class TestOrphanSweep:
    def test_debris_removed_on_open(self, store_dir):
        for name in ("A_B.csv.staged", "leaf.csv.tmp.1234", "stray.csv"):
            with open(os.path.join(store_dir, name), "w") as fh:
                fh.write("debris")
        with CubeStore.open(store_dir, verify="quick") as store:
            removed = set(store.recovery["orphans_removed"])
        assert removed == {"A_B.csv.staged", "leaf.csv.tmp.1234", "stray.csv"}
        for name in removed:
            assert not os.path.exists(os.path.join(store_dir, name))

    def test_verify_off_leaves_debris_alone(self, store_dir):
        path = os.path.join(store_dir, "stray.csv")
        with open(path, "w") as fh:
            fh.write("debris")
        with CubeStore.open(store_dir, verify="off"):
            pass
        assert os.path.exists(path)


class TestJournalledAppend:
    def test_append_then_reopen_at_full_verify(self, small_skewed, tmp_path):
        directory = str(tmp_path / "store")
        first = small_skewed.slice(0, 300)
        delta = small_skewed.slice(300, len(small_skewed))
        CubeStore.build(first, directory).close()
        with CubeStore.open(directory, verify="off") as store:
            store.append(delta)
            assert store.generation == 2
        # Fresh-build oracle over the concatenated relation.
        oracle_dir = str(tmp_path / "oracle")
        CubeStore.build(small_skewed, oracle_dir).close()
        with CubeStore.open(directory, verify="full") as got, \
                CubeStore.open(oracle_dir, verify="full") as want:
            assert not got.recovery["rolled_forward"]
            for leaf in want.leaves:
                assert got.query(leaf, minsup=2) == want.query(leaf, minsup=2)

    def test_crash_before_journal_rolls_back(self, small_skewed, store_dir):
        # Simulate a crash mid-stage: staged files exist, no journal yet.
        with CubeStore.open(store_dir, verify="off") as store:
            old_generation = store.generation
            leaf = store.leaves[0]
            expected = store.query(leaf, minsup=2)
            path = _leaf_path(store_dir, store, leaf)
        with open(path + STAGED_SUFFIX, "w") as fh:
            fh.write("half-written next generation")

        with CubeStore.open(store_dir, verify="quick") as store:
            assert store.generation == old_generation
            assert not store.recovery["rolled_forward"]
            assert path.rsplit(os.sep, 1)[-1] + STAGED_SUFFIX \
                in store.recovery["orphans_removed"]
            assert store.query(leaf, minsup=2) == expected
        assert not os.path.exists(path + STAGED_SUFFIX)

    def test_crash_after_journal_rolls_forward(self, small_skewed, tmp_path):
        # Run a real append, then reconstruct the moment just after the
        # journal hit disk: staged files present, old manifest, journal.
        directory = str(tmp_path / "store")
        first = small_skewed.slice(0, 300)
        delta = small_skewed.slice(300, len(small_skewed))
        CubeStore.build(first, directory).close()

        with open(os.path.join(directory, MANIFEST)) as fh:
            old_manifest_text = fh.read()
        snapshot = {}
        with CubeStore.open(directory, verify="off") as store:
            for leaf in store.leaves:
                path = _leaf_path(directory, store, leaf)
                with open(path, "rb") as fh:
                    snapshot[path] = fh.read()
            store.append(delta)
            new_answers = {leaf: store.query(leaf, minsup=2)
                           for leaf in store.leaves}
        with open(os.path.join(directory, MANIFEST)) as fh:
            new_manifest = json.load(fh)

        # Rewind: new leaf bytes back to .staged, old bytes + manifest
        # restored, journal in place — exactly the post-commit crash.
        for path, old_bytes in snapshot.items():
            with open(path, "rb") as fh:
                new_bytes = fh.read()
            with open(path + STAGED_SUFFIX, "wb") as fh:
                fh.write(new_bytes)
            with open(path, "wb") as fh:
                fh.write(old_bytes)
        with open(os.path.join(directory, MANIFEST), "w") as fh:
            fh.write(old_manifest_text)
        with open(os.path.join(directory, JOURNAL), "w") as fh:
            json.dump({"format": JOURNAL_FORMAT,
                       "generation": new_manifest["generation"],
                       "manifest": new_manifest}, fh)

        with CubeStore.open(directory, verify="full") as store:
            assert store.recovery["rolled_forward"]
            assert store.generation == new_manifest["generation"]
            for leaf, answer in new_answers.items():
                assert store.query(leaf, minsup=2) == answer
        assert not os.path.exists(os.path.join(directory, JOURNAL))

    def test_garbage_journal_ignored(self, store_dir):
        with open(os.path.join(store_dir, JOURNAL), "w") as fh:
            fh.write("{not json")
        with CubeStore.open(store_dir, verify="quick") as store:
            assert not store.recovery["rolled_forward"]
        assert not os.path.exists(os.path.join(store_dir, JOURNAL))

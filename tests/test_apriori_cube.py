"""The hash-tree (Apriori) cube: correctness and the memory failure mode."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apriori_cube import ItemIndex, apriori_iceberg_cube
from repro.core.naive import naive_iceberg_cube
from repro.data import Relation, uniform_relation
from repro.errors import MemoryBudgetExceeded


class TestItemIndex:
    def test_items_partition_by_dimension(self, small_uniform):
        index = ItemIndex(small_uniform, small_uniform.dims)
        assert index.n_items == sum(
            small_uniform.cardinality(d) for d in small_uniform.dims
        )
        for item in range(index.n_items):
            d, value = index.decode(item)
            assert 0 <= d < len(small_uniform.dims)

    def test_transactions_are_sorted_one_item_per_dim(self, small_uniform):
        index = ItemIndex(small_uniform, small_uniform.dims)
        t = index.transaction(small_uniform.rows[0])
        assert len(t) == len(small_uniform.dims)
        assert list(t) == sorted(t)
        assert [index.dim_of(i) for i in t] == list(range(len(small_uniform.dims)))


class TestCorrectness:
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    def test_matches_naive(self, small_skewed, minsup):
        expected = naive_iceberg_cube(small_skewed, minsup=minsup)
        got, _stats, _meter = apriori_iceberg_cube(small_skewed, minsup=minsup)
        assert got.equals(expected), got.diff(expected)

    def test_sales_example(self, sales):
        got, _stats, _meter = apriori_iceberg_cube(sales, minsup=2)
        assert got.equals(naive_iceberg_cube(sales, minsup=2))

    @given(
        st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
                 max_size=40),
        st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_naive(self, rows, minsup):
        relation = Relation(("A", "B", "C"), rows, [1.0] * len(rows))
        expected = naive_iceberg_cube(relation, minsup=minsup)
        got, _stats, _meter = apriori_iceberg_cube(relation, minsup=minsup)
        assert got.equals(expected)


class TestMemoryFailure:
    def test_blows_budget_on_sparse_low_minsup_input(self):
        # The thesis' observed failure: breadth-first candidates over a
        # big item universe exhaust memory before pruning can help.
        rel = uniform_relation(1500, [40] * 6, seed=4)
        with pytest.raises(MemoryBudgetExceeded):
            apriori_iceberg_cube(rel, minsup=1, memory_budget=1_500_000)

    def test_high_minsup_survives_where_low_fails(self):
        rel = uniform_relation(800, [10] * 4, seed=4)
        budget = 3_000_000
        got, _stats, meter = apriori_iceberg_cube(rel, minsup=40, memory_budget=budget)
        assert meter.peak_bytes <= budget
        expected = naive_iceberg_cube(rel, minsup=40)
        assert got.equals(expected)

    def test_meter_reports_peak(self, small_uniform):
        _got, _stats, meter = apriori_iceberg_cube(small_uniform, minsup=2)
        assert meter.peak_bytes > 0

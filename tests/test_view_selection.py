"""HRU greedy view selection and the materialized store."""

import pytest

from repro.core.naive import naive_cuboid
from repro.data import uniform_relation, zipf_relation
from repro.errors import PlanError
from repro.online.view_selection import (
    MaterializedCubeStore,
    estimate_cuboid_sizes,
    greedy_select,
)


@pytest.fixture
def relation():
    return zipf_relation(1500, [12, 8, 5, 3], skew=0.7, seed=11)


class TestSizeEstimates:
    def test_exact_when_sample_is_everything(self, relation):
        sizes = estimate_cuboid_sizes(relation, sample_size=len(relation) * 2)
        for cuboid in (("A",), ("A", "B"), ("A", "B", "C", "D")):
            assert sizes[cuboid] == len(naive_cuboid(relation, cuboid))

    def test_estimates_bounded(self, relation):
        sizes = estimate_cuboid_sizes(relation, sample_size=64)
        for cuboid, size in sizes.items():
            assert 1 <= size <= len(relation)
            if cuboid:
                assert size <= relation.cardinality_product(cuboid)

    def test_all_node_is_one(self, relation):
        assert estimate_cuboid_sizes(relation)[()] == 1

    def test_monotone_in_expectation(self, relation):
        # A cuboid is never estimated larger than a superset cuboid by
        # more than sampling noise; check the exact-sample case strictly.
        sizes = estimate_cuboid_sizes(relation, sample_size=10_000)
        assert sizes[("A",)] <= sizes[("A", "B")]
        assert sizes[("A", "B")] <= sizes[("A", "B", "C", "D")]


class TestGreedySelect:
    def test_root_always_first(self):
        sizes = {c: 10 for c in [("A", "B"), ("A",), ("B",), ()]}
        views = greedy_select(("A", "B"), sizes, max_views=1)
        assert views == [("A", "B")]

    def test_budget_by_views(self, relation):
        sizes = estimate_cuboid_sizes(relation)
        views = greedy_select(relation.dims, sizes, max_views=3)
        assert len(views) == 3
        assert views[0] == relation.dims

    def test_budget_by_cells(self, relation):
        sizes = estimate_cuboid_sizes(relation)
        budget = sizes[relation.dims] + 50
        views = greedy_select(relation.dims, sizes, max_cells=budget)
        assert sum(sizes[v] for v in views) <= budget

    def test_needs_some_budget(self, relation):
        with pytest.raises(PlanError):
            greedy_select(relation.dims, estimate_cuboid_sizes(relation))

    def test_greedy_picks_high_benefit_views(self):
        # One cheap view answering many cuboids should be picked first.
        dims = ("A", "B", "C")
        sizes = {
            ("A", "B", "C"): 1000,
            ("A", "B"): 10,  # tiny: answers AB, A, B cheaply
            ("A", "C"): 900,
            ("B", "C"): 900,
            ("A",): 500, ("B",): 500, ("C",): 900,
            (): 1,
        }
        views = greedy_select(dims, sizes, max_views=2)
        assert views[1] == ("A", "B")


class TestMaterializedStore:
    def test_queries_exact_at_any_threshold(self, relation):
        store = MaterializedCubeStore(relation, max_views=3)
        for cuboid in (("A",), ("B", "D"), ("A", "B", "C"), ()):
            for minsup in (1, 3):
                if cuboid:
                    expected = {
                        cell: agg
                        for cell, agg in naive_cuboid(relation, cuboid).items()
                        if agg[0] >= minsup
                    }
                else:
                    expected = {(): (len(relation), sum(relation.measures))}
                got = store.query(cuboid, minsup=minsup)
                got = {k: (c, pytest.approx(v)) for k, (c, v) in got.items()}
                assert got == expected, (cuboid, minsup)

    def test_cuboid_order_canonicalized(self, relation):
        store = MaterializedCubeStore(relation, max_views=2)
        a = store.query(("A", "C"), minsup=2)
        b = store.query(("C", "A"), minsup=2)
        assert a == b

    def test_more_views_cheaper_queries(self, relation):
        small = MaterializedCubeStore(relation, max_views=1)
        big = MaterializedCubeStore(relation, max_views=6)
        assert big.average_query_cost() <= small.average_query_cost()
        assert big.materialized_cells() >= small.materialized_cells()

    def test_best_view_is_an_ancestor(self, relation):
        store = MaterializedCubeStore(relation, max_views=4)
        for cuboid in (("B",), ("A", "D")):
            view = store.best_view_for(cuboid)
            assert set(cuboid) <= set(view)

    def test_cells_scanned_accounting(self, relation):
        store = MaterializedCubeStore(relation, max_views=2)
        before = store.cells_scanned
        store.query(("A",), minsup=1)
        assert store.cells_scanned > before

    def test_dense_data_gets_big_savings(self):
        rel = uniform_relation(2000, [4, 4, 4, 4], seed=5)
        root_only = MaterializedCubeStore(rel, max_views=1)
        chosen = MaterializedCubeStore(rel, max_views=5)
        assert chosen.average_query_cost() < 0.6 * root_only.average_query_cost()

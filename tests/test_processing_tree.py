"""BUC processing tree and PT's binary division (Figures 2.4(c), 3.9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.lattice import ProcessingTree, SubtreeTask, binary_divide

DIMS = ("A", "B", "C", "D")


class TestTreeStructure:
    def test_children_extend_to_later_dimensions_only(self):
        tree = ProcessingTree(DIMS)
        assert tree.children(()) == [("A",), ("B",), ("C",), ("D",)]
        assert tree.children(("B",)) == [("B", "C"), ("B", "D")]
        assert tree.children(("A", "D")) == []

    def test_subtree_sizes_are_powers_of_two(self):
        tree = ProcessingTree(DIMS)
        assert tree.subtree_size(()) == 16
        assert tree.subtree_size(("A",)) == 8
        assert tree.subtree_size(("B",)) == 4
        assert tree.subtree_size(("A", "B")) == 4
        assert tree.subtree_size(("D",)) == 1

    def test_subtree_nodes_dfs_order(self):
        tree = ProcessingTree(("A", "B", "C"))
        assert tree.subtree_nodes(("A",)) == [
            ("A",), ("A", "B"), ("A", "B", "C"), ("A", "C"),
        ]

    def test_whole_tree_covers_lattice(self):
        tree = ProcessingTree(DIMS)
        nodes = tree.subtree_nodes(())
        assert len(nodes) == 16
        assert len(set(nodes)) == 16


class TestSubtreeTask:
    def test_full_task_nodes(self):
        tree = ProcessingTree(DIMS)
        task = SubtreeTask(("A",))
        assert len(task.nodes(tree)) == task.size(tree) == 8

    def test_chopped_task_excludes_branch(self):
        tree = ProcessingTree(DIMS)
        task = SubtreeTask((), skipped=(("A",),))
        nodes = task.nodes(tree)
        assert ("A",) not in nodes
        assert ("A", "B") not in nodes
        assert ("B",) in nodes
        assert task.size(tree) == 8

    def test_split_halves_matching_figure_3_9(self):
        tree = ProcessingTree(DIMS)
        whole = SubtreeTask(())
        left, rest = whole.split(tree)
        assert left == SubtreeTask(("A",))
        assert rest == SubtreeTask((), skipped=(("A",),))
        assert left.size(tree) == rest.size(tree) == 8
        # Second-level cuts, exactly the four tasks of Figure 3.9.
        t_ab, t_a_minus = left.split(tree)
        t_b, t_rest = rest.split(tree)
        assert t_ab == SubtreeTask(("A", "B"))
        assert t_a_minus == SubtreeTask(("A",), skipped=(("A", "B"),))
        assert t_b == SubtreeTask(("B",))
        assert t_rest == SubtreeTask((), skipped=(("A",), ("B",)))
        assert {t.size(tree) for t in (t_ab, t_a_minus, t_b, t_rest)} == {4}

    def test_single_node_cannot_split(self):
        tree = ProcessingTree(DIMS)
        with pytest.raises(PlanError):
            SubtreeTask(("D",)).split(tree)

    def test_equality_and_hash(self):
        assert SubtreeTask(("A",)) == SubtreeTask(("A",))
        assert hash(SubtreeTask(("A",))) == hash(SubtreeTask(("A",)))
        assert SubtreeTask(("A",)) != SubtreeTask(("A",), skipped=(("A", "B"),))


class TestBinaryDivide:
    @given(st.integers(1, 6), st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_division_partitions_the_tree(self, n_dims, n_tasks):
        dims = tuple("ABCDEF"[:n_dims])
        tree = ProcessingTree(dims)
        tasks = binary_divide(tree, n_tasks)
        nodes = [node for task in tasks for node in task.nodes(tree)]
        assert sorted(nodes) == sorted(tree.subtree_nodes(()))  # exact cover

    @given(st.integers(2, 6), st.integers(2, 32))
    @settings(max_examples=60, deadline=None)
    def test_division_is_balanced(self, n_dims, n_tasks):
        dims = tuple("ABCDEF"[:n_dims])
        tree = ProcessingTree(dims)
        tasks = binary_divide(tree, n_tasks)
        sizes = [t.size(tree) for t in tasks]
        # Sizes are powers of two within a factor of two of each other,
        # unless division bottomed out at single nodes.
        assert max(sizes) <= 2 * min(sizes) or max(sizes) <= 2

    def test_reaches_requested_count_when_possible(self):
        tree = ProcessingTree(DIMS)
        assert len(binary_divide(tree, 8)) == 8
        # Cannot exceed the node count.
        assert len(binary_divide(tree, 100)) == 16

    def test_invalid_count_rejected(self):
        with pytest.raises(PlanError):
            binary_divide(ProcessingTree(DIMS), 0)

    def test_one_task_is_whole_tree(self):
        tree = ProcessingTree(DIMS)
        (task,) = binary_divide(tree, 1)
        assert task.size(tree) == 16

"""CSV round trips and size estimation."""

import pytest

from repro.data import from_raw_rows, load_csv, relation_bytes, save_csv, uniform_relation
from repro.errors import SchemaError


class TestRoundTrip:
    def test_encoded_relation_round_trips(self, tmp_path):
        rel = from_raw_rows(("city", "item"),
                            [["van", "tv", 3], ["sea", "tv", 5], ["van", "vcr", 7]],
                            measure_index=2)
        path = tmp_path / "r.csv"
        save_csv(rel, path)
        back = load_csv(path)
        assert back.dims == rel.dims
        assert back.rows == rel.rows
        assert back.measures == rel.measures

    def test_unencoded_relation_round_trips_by_code(self, tmp_path):
        rel = uniform_relation(50, [3, 4], seed=1)
        path = tmp_path / "r.csv"
        save_csv(rel, path)
        back = load_csv(path)
        assert len(back) == 50
        # Codes re-encode in appearance order; cardinalities preserved.
        assert back.cardinality("A") == rel.project(("A",)).cardinality("A")

    def test_measure_values_preserved(self, tmp_path):
        rel = from_raw_rows(("a",), [["x", 1.5], ["y", -2.25]], measure_index=1)
        path = tmp_path / "r.csv"
        save_csv(rel, path)
        assert load_csv(path).measures == [1.5, -2.25]


class TestValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_missing_measure_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,measure\nx,1\ny\n")
        with pytest.raises(SchemaError):
            load_csv(path)


class TestSize:
    def test_relation_bytes_scale_with_rows_and_dims(self):
        small = uniform_relation(10, [2, 2], seed=0)
        wide = uniform_relation(10, [2, 2, 2, 2], seed=0)
        tall = uniform_relation(20, [2, 2], seed=0)
        assert relation_bytes(wide) > relation_bytes(small)
        assert relation_bytes(tall) == 2 * relation_bytes(small)

"""Dictionary encoding: codes are dense, stable and reversible."""

import pytest

from repro.data.encoding import ColumnEncoder, Dictionary
from repro.errors import EncodingError


class TestDictionary:
    def test_codes_assigned_in_first_appearance_order(self):
        d = Dictionary()
        assert d.encode("b") == 0
        assert d.encode("a") == 1
        assert d.encode("b") == 0  # stable on repeat

    def test_cardinality_counts_distinct_values(self):
        d = Dictionary()
        for v in ["x", "y", "x", "z", "y"]:
            d.encode(v)
        assert d.cardinality == 3
        assert len(d) == 3

    def test_decode_inverts_encode(self):
        d = Dictionary()
        values = ["red", "white", "blue"]
        codes = [d.encode(v) for v in values]
        assert [d.decode(c) for c in codes] == values

    def test_values_listed_in_code_order(self):
        d = Dictionary()
        for v in ("m", "k", "z"):
            d.encode(v)
        assert d.values() == ["m", "k", "z"]

    def test_decode_out_of_range_raises(self):
        d = Dictionary()
        d.encode("only")
        with pytest.raises(EncodingError):
            d.decode(5)

    def test_encode_existing_raises_for_unknown(self):
        d = Dictionary()
        d.encode("known")
        assert d.encode_existing("known") == 0
        with pytest.raises(EncodingError):
            d.encode_existing("unknown")

    def test_unhashable_free_values_supported(self):
        d = Dictionary()
        assert d.encode((1, 2)) == 0
        assert d.decode(0) == (1, 2)


class TestColumnEncoder:
    def test_encodes_rows_per_attribute(self):
        enc = ColumnEncoder(("a", "b"))
        assert enc.encode_row(("x", "p")) == (0, 0)
        assert enc.encode_row(("y", "p")) == (1, 0)
        assert enc.encode_row(("x", "q")) == (0, 1)

    def test_row_width_validated(self):
        enc = ColumnEncoder(("a", "b"))
        with pytest.raises(EncodingError):
            enc.encode_row(("only-one",))

    def test_decode_cell_maps_back_to_values(self):
        enc = ColumnEncoder(("a", "b", "c"))
        enc.encode_rows([("x", "p", 1), ("y", "q", 2)])
        assert enc.decode_cell(("a", "c"), (1, 0)) == ("y", 1)

    def test_decode_cell_width_validated(self):
        enc = ColumnEncoder(("a", "b"))
        enc.encode_row(("x", "p"))
        with pytest.raises(EncodingError):
            enc.decode_cell(("a",), (0, 0))

    def test_cardinalities_reported_per_attribute(self):
        enc = ColumnEncoder(("a", "b"))
        enc.encode_rows([("x", "p"), ("y", "p"), ("z", "p")])
        assert enc.cardinalities() == {"a": 3, "b": 1}

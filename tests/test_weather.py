"""The synthetic weather dataset matches the thesis' documented traits."""

import pytest

from repro.data.weather import (
    BASELINE_DIMS,
    WEATHER_DIMENSIONS,
    baseline_dims,
    cardinality_of,
    dimension_names,
    dims_by_cardinality,
    weather_relation,
)


class TestDimensionTable:
    def test_twenty_dimensions(self):
        assert len(WEATHER_DIMENSIONS) == 20
        assert len(dimension_names()) == 20

    def test_cardinalities_span_2_to_7037(self):
        cards = [c for _n, c, _s in WEATHER_DIMENSIONS]
        assert min(cards) == 2
        assert max(cards) == 7037

    def test_baseline_product_near_1e13(self):
        product = 1
        for name in BASELINE_DIMS:
            product *= cardinality_of(name)
        assert 1e12 < product < 1e15  # thesis: "roughly equal to 1e13"

    def test_baseline_has_nine_dims(self):
        assert len(BASELINE_DIMS) == 9


class TestSelection:
    def test_smallest_vs_largest_products_span_figure_4_6_range(self):
        small = 1
        for name in dims_by_cardinality("smallest", 9):
            small *= cardinality_of(name)
        large = 1
        for name in dims_by_cardinality("largest", 9):
            large *= cardinality_of(name)
        assert small < 1e9
        assert large > 1e18
        assert large / small > 1e8

    def test_middle_selection_between_extremes(self):
        mid = 1
        for name in dims_by_cardinality("middle", 9):
            mid *= cardinality_of(name)
        small = 1
        for name in dims_by_cardinality("smallest", 9):
            small *= cardinality_of(name)
        assert small < mid

    def test_invalid_selector_rejected(self):
        with pytest.raises(ValueError):
            dims_by_cardinality("weird")

    def test_baseline_dims_extension(self):
        assert baseline_dims(5) == BASELINE_DIMS[:5]
        extended = baseline_dims(12)
        assert len(extended) == 12
        assert len(set(extended)) == 12
        with pytest.raises(ValueError):
            baseline_dims(25)


class TestGeneration:
    def test_default_dims_are_baseline(self):
        rel = weather_relation(100)
        assert rel.dims == BASELINE_DIMS

    def test_deterministic(self):
        assert weather_relation(200).rows == weather_relation(200).rows

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError):
            weather_relation(10, dims=("nonexistent",))

    def test_skewed_dimension_partitions_unevenly(self):
        # The thesis: partitioning on the skewed dimension produces one
        # partition tens of times larger than the smallest.
        rel = weather_relation(20000, dims=("humidity_class", "day"))
        parts = rel.range_partition("humidity_class", 8)
        sizes = sorted(len(p) for p in parts if len(p))
        assert sizes[-1] > 15 * sizes[0]

"""The experiment harness: tables, checks, scaling knob."""

import pytest

from repro.bench.harness import Check, ExperimentResult, bench_scale, scaled


class TestExperimentResult:
    def make(self):
        r = ExperimentResult("Fig X", "a title", ["k", "v"], [["a", 1.0], ["b", 2.5]])
        return r

    def test_checks_accumulate(self):
        r = self.make()
        r.check("good", True).check("bad", False, "detail")
        assert not r.passed
        assert [c.name for c in r.failures()] == ["bad"]

    def test_assert_checks_raises_with_detail(self):
        r = self.make().check("broken", False, "numbers differ")
        with pytest.raises(AssertionError) as excinfo:
            r.assert_checks()
        assert "broken" in str(excinfo.value)
        assert "numbers differ" in str(excinfo.value)

    def test_assert_checks_passes_quietly(self):
        self.make().check("fine", True).assert_checks()

    def test_format_table_contains_everything(self):
        r = self.make()
        r.notes = "a note"
        r.check("fine", True, "why")
        text = r.format_table()
        assert "Fig X" in text and "a title" in text
        assert "a" in text and "2.500" in text
        assert "a note" in text
        assert "[PASS] fine" in text

    def test_small_floats_rendered_scientific(self):
        r = ExperimentResult("F", "t", ["v"], [[1e-6]])
        assert "e-06" in r.format_table()

    def test_report_prints(self, capsys):
        self.make().report()
        assert "Fig X" in capsys.readouterr().out


class TestScaling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 0.05

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5
        assert scaled(1000) == 500

    def test_scaled_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        assert scaled(1000, minimum=7) == 7


class TestCheck:
    def test_repr(self):
        assert "PASS" in repr(Check("x", True))
        assert "FAIL" in repr(Check("x", False))

"""The real multiprocess backend agrees with the oracle."""

import pytest

from repro.core import SumThreshold
from repro.core.columnar import HAS_NUMPY
from repro.core.naive import naive_iceberg_cube
from repro.data import Relation
from repro.errors import PlanError
from repro.parallel.local import multiprocess_iceberg_cube

KERNEL_NAMES = ["auto", "columnar"] + (["numpy"] if HAS_NUMPY else [])


class TestMultiprocessCube:
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    def test_single_worker_matches_naive(self, small_skewed, minsup):
        expected = naive_iceberg_cube(small_skewed, minsup=minsup)
        got = multiprocess_iceberg_cube(small_skewed, minsup=minsup, workers=1)
        assert got.equals(expected), got.diff(expected)

    def test_pool_matches_naive(self, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        batch_size=3)
        assert got.equals(expected), got.diff(expected)

    def test_sum_threshold(self, small_skewed):
        threshold = SumThreshold(30.0)
        expected = naive_iceberg_cube(small_skewed, minsup=threshold)
        got = multiprocess_iceberg_cube(small_skewed, minsup=threshold, workers=2)
        assert got.equals(expected)

    def test_sales_example(self, sales):
        expected = naive_iceberg_cube(sales, minsup=2)
        got = multiprocess_iceberg_cube(sales, minsup=2, workers=2)
        assert got.equals(expected)

    def test_empty_relation(self):
        rel = Relation(("A", "B"), [])
        got = multiprocess_iceberg_cube(rel, workers=1)
        assert got.total_cells() == 0

    def test_validation(self, small_uniform):
        with pytest.raises(PlanError):
            multiprocess_iceberg_cube(small_uniform, workers=0)
        with pytest.raises(PlanError):
            multiprocess_iceberg_cube(small_uniform, dims=())
        bad = Relation(("A",), [(0,)], [-1.0])
        with pytest.raises(PlanError):
            multiprocess_iceberg_cube(bad, minsup=SumThreshold(1.0))

    def test_dims_subset(self, small_uniform):
        expected = naive_iceberg_cube(small_uniform, dims=("A", "C"), minsup=2)
        got = multiprocess_iceberg_cube(small_uniform, dims=("A", "C"),
                                        minsup=2, workers=2)
        assert got.equals(expected)


class TestKernelAndBatching:
    """Forced kernels and scheduling knobs all reach the same cells."""

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_forced_kernel_matches_naive(self, small_skewed, kernel):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        kernel=kernel)
        assert got.equals(expected), got.diff(expected)

    def test_unknown_kernel_is_a_plan_error(self, small_skewed):
        with pytest.raises(PlanError):
            multiprocess_iceberg_cube(small_skewed, kernel="fortran")

    @pytest.mark.parametrize("batch_size", [1, 2, 7])
    def test_batch_size_does_not_change_cells(self, small_skewed, batch_size):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        batch_size=batch_size)
        assert got.equals(expected), got.diff(expected)

    def test_worker_count_does_not_change_cells(self, small_uniform):
        baseline = multiprocess_iceberg_cube(small_uniform, minsup=2,
                                             workers=1)
        for workers in (2, 3):
            got = multiprocess_iceberg_cube(small_uniform, minsup=2,
                                            workers=workers)
            assert got.equals(baseline), got.diff(baseline)

"""The real multiprocess backend agrees with the oracle."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.faults import FaultPlan, Slowdown, TaskFailure
from repro.core import SumThreshold
from repro.core.buc import buc_iceberg_cube
from repro.core.columnar import HAS_NUMPY, ColumnarFrame, aggregate_cuboid
from repro.core.naive import naive_iceberg_cube
from repro.data import Relation
from repro.errors import PlanError, WorkerCrashError
from repro.parallel.local import (
    CHAOS_KILL_ENV,
    _batched,
    multiprocess_iceberg_cube,
    multiprocess_leaf_cells,
)
from repro.parallel.shm import DEV_SHM

KERNEL_NAMES = ["auto", "columnar"] + (["numpy"] if HAS_NUMPY else [])


class TestMultiprocessCube:
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    def test_single_worker_matches_naive(self, small_skewed, minsup):
        expected = naive_iceberg_cube(small_skewed, minsup=minsup)
        got = multiprocess_iceberg_cube(small_skewed, minsup=minsup, workers=1)
        assert got.equals(expected), got.diff(expected)

    def test_pool_matches_naive(self, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        batch_size=3)
        assert got.equals(expected), got.diff(expected)

    def test_sum_threshold(self, small_skewed):
        threshold = SumThreshold(30.0)
        expected = naive_iceberg_cube(small_skewed, minsup=threshold)
        got = multiprocess_iceberg_cube(small_skewed, minsup=threshold, workers=2)
        assert got.equals(expected)

    def test_sales_example(self, sales):
        expected = naive_iceberg_cube(sales, minsup=2)
        got = multiprocess_iceberg_cube(sales, minsup=2, workers=2)
        assert got.equals(expected)

    def test_empty_relation(self):
        rel = Relation(("A", "B"), [])
        got = multiprocess_iceberg_cube(rel, workers=1)
        assert got.total_cells() == 0

    def test_validation(self, small_uniform):
        with pytest.raises(PlanError):
            multiprocess_iceberg_cube(small_uniform, workers=0)
        with pytest.raises(PlanError):
            multiprocess_iceberg_cube(small_uniform, dims=())
        bad = Relation(("A",), [(0,)], [-1.0])
        with pytest.raises(PlanError):
            multiprocess_iceberg_cube(bad, minsup=SumThreshold(1.0))

    def test_dims_subset(self, small_uniform):
        expected = naive_iceberg_cube(small_uniform, dims=("A", "C"), minsup=2)
        got = multiprocess_iceberg_cube(small_uniform, dims=("A", "C"),
                                        minsup=2, workers=2)
        assert got.equals(expected)


class TestKernelAndBatching:
    """Forced kernels and scheduling knobs all reach the same cells."""

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_forced_kernel_matches_naive(self, small_skewed, kernel):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        kernel=kernel)
        assert got.equals(expected), got.diff(expected)

    def test_unknown_kernel_is_a_plan_error(self, small_skewed):
        with pytest.raises(PlanError):
            multiprocess_iceberg_cube(small_skewed, kernel="fortran")

    @pytest.mark.parametrize("batch_size", [1, 2, 7])
    def test_batch_size_does_not_change_cells(self, small_skewed, batch_size):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        batch_size=batch_size)
        assert got.equals(expected), got.diff(expected)

    def test_worker_count_does_not_change_cells(self, small_uniform):
        baseline = multiprocess_iceberg_cube(small_uniform, minsup=2,
                                             workers=1)
        for workers in (2, 3):
            got = multiprocess_iceberg_cube(small_uniform, minsup=2,
                                            workers=workers)
            assert got.equals(baseline), got.diff(baseline)


class TestSupervisedChaos:
    """Fault plans SIGKILL and hang REAL worker processes; the
    supervisor detects the damage, respawns the pool, retries the lost
    batches, and the cells still match the oracle exactly."""

    def test_fault_free_run_reports_quiet_recovery_log(self, small_skewed):
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        fault_plan=FaultPlan())
        assert got.recovery is not None
        assert got.recovery.retries == 0
        assert got.recovery.respawns == 0
        assert got.recovery.worker_crashes == 0
        assert got.recovery.stalls == 0

    def test_sigkilled_worker_is_recovered(self, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        plan = FaultPlan(failures=[TaskFailure(0, 0)], backoff_s=0.01)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        fault_plan=plan)
        assert got.equals(expected), got.diff(expected)
        assert got.recovery.worker_crashes >= 1
        assert got.recovery.respawns >= 1
        assert got.recovery.retries >= 1

    def test_two_crashes_and_a_hang_still_oracle_exact(self, small_skewed):
        # The acceptance scenario: kill two batches' workers AND hang a
        # third past the batch timeout, all in one run.
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        plan = FaultPlan(failures=[TaskFailure(0, 0), TaskFailure(2, 0)],
                         slowdowns=[Slowdown(1, 4.0)], backoff_s=0.01)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=3,
                                        batch_size=2, fault_plan=plan,
                                        batch_timeout=1.0)
        assert got.equals(expected), got.diff(expected)
        # A crash aborts the round, so the hung batch may be recovered
        # by the respawn before its stall is separately diagnosed; either
        # way every lost batch was retried.
        assert got.recovery.worker_crashes >= 1
        assert got.recovery.respawns >= 1
        assert got.recovery.retries >= 2

    def test_hung_worker_is_detected_as_a_stall(self, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        plan = FaultPlan(slowdowns=[Slowdown(1, 4.0)], backoff_s=0.01)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        batch_size=2, fault_plan=plan,
                                        batch_timeout=1.0)
        assert got.equals(expected), got.diff(expected)
        assert got.recovery.stalls >= 1
        assert got.recovery.respawns >= 1

    def test_retry_budget_exhaustion_raises_worker_crash_error(
            self, small_uniform):
        plan = FaultPlan(failure_rate=1.0, max_retries=1, backoff_s=0.01)
        with pytest.raises(WorkerCrashError) as exc_info:
            multiprocess_iceberg_cube(small_uniform, workers=2,
                                      fault_plan=plan)
        assert exc_info.value.attempts > 1
        assert "retry budget" in str(exc_info.value)

    def test_repeated_crashes_of_same_batch_respect_backoff_cap(
            self, small_uniform):
        plan = FaultPlan(failures=[TaskFailure(0, 0), TaskFailure(0, 1)],
                         max_retries=3, backoff_s=0.01)
        expected = naive_iceberg_cube(small_uniform, minsup=2)
        got = multiprocess_iceberg_cube(small_uniform, minsup=2, workers=2,
                                        fault_plan=plan)
        assert got.equals(expected)
        assert got.recovery.retries >= 2
        assert got.recovery.backoff_seconds > 0.0

    def test_fault_path_equals_fault_free_path_cell_for_cell(
            self, small_skewed):
        clean = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2)
        plan = FaultPlan(failures=[TaskFailure(1, 0)], backoff_s=0.01)
        faulted = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                            fault_plan=plan)
        assert faulted.equals(clean), faulted.diff(clean)


def _rsm_segments():
    """Names of repro shared-memory segments currently in /dev/shm."""
    if not os.path.isdir(DEV_SHM):
        return set()
    return {entry for entry in os.listdir(DEV_SHM)
            if entry.startswith("rsm-")}


class TestDataPlane:
    """The shared-memory transport, auto-calibrated batching and the
    pickle fallback all produce exactly the oracle's cells — and leak
    no segments, even when a writer is SIGKILLed mid-write."""

    def test_auto_calibrated_batching_matches_naive(self, small_skewed):
        # batch_size=None (the default): a calibration pass times the
        # tail tasks in-process, then packs cost-balanced batches.
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        batch_size=None)
        assert got.equals(expected), got.diff(expected)

    def test_no_shm_fallback_matches_naive(self, small_skewed):
        # use_shm=False (CLI --no-shm): frame by fork, results pickled.
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        use_shm=False)
        assert got.equals(expected), got.diff(expected)
        assert _rsm_segments() == set()

    def test_tuple_key_overflow_relation_matches_naive(self):
        # Cardinalities past the 63-bit packed-key budget: the frame
        # carries packing=None and results ride the one-int64-per-
        # coordinate fallback encoding.
        rows = [(2 ** 40 + i % 3, i % 5, 2 ** 35 * (i % 4))
                for i in range(60)]
        rel = Relation(("A", "B", "C"), rows,
                       [float(i % 7) for i in range(60)])
        assert ColumnarFrame.from_relation(rel, rel.dims).packing is None
        expected = naive_iceberg_cube(rel, minsup=2)
        got = multiprocess_iceberg_cube(rel, minsup=2, workers=2)
        assert got.equals(expected), got.diff(expected)

    def test_no_segments_leak_after_a_clean_run(self, small_skewed):
        before = _rsm_segments()
        multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2)
        assert _rsm_segments() == before

    def test_chaos_sigkill_mid_segment_write_sweeps_the_leak(
            self, small_skewed, monkeypatch):
        # The worker writing batch 0's result segment dies halfway
        # through the write (a real SIGKILL, attempt 0 only).  The
        # supervisor must respawn, sweep the orphaned segment, re-run
        # the batch, and still hand back the oracle's cells.
        before = _rsm_segments()
        monkeypatch.setenv(CHAOS_KILL_ENV, "0")
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        batch_size=3, backoff_s=0.01)
        assert got.equals(expected), got.diff(expected)
        assert got.recovery.worker_crashes >= 1
        assert got.recovery.respawns >= 1
        assert got.recovery.segments_swept >= 1
        assert _rsm_segments() == before

    def test_leaf_cells_match_inline_aggregation(self, small_uniform):
        leaves = [("A", "B"), ("B", "C"), ("C", "D"), ("A",)]
        frame = ColumnarFrame.from_relation(small_uniform,
                                            small_uniform.dims)
        expected = {leaf: aggregate_cuboid(frame, leaf) for leaf in leaves}
        pooled = multiprocess_leaf_cells(small_uniform, leaves, workers=2,
                                         batch_size=1)
        inline = multiprocess_leaf_cells(small_uniform, leaves, workers=1)
        assert pooled == expected
        assert inline == expected
        assert _rsm_segments() == set()

    def test_batched_yields_lazy_index_ranges(self):
        gen = _batched(7, 3)
        assert iter(gen) is gen  # a generator: nothing materialized
        assert list(gen) == [(0, 3), (3, 6), (6, 7)]
        assert list(_batched(0, 4)) == []
        assert list(_batched(2, 10)) == [(0, 2)]


@st.composite
def tiny_relations(draw):
    n_dims = draw(st.integers(1, 3))
    cards = [draw(st.integers(1, 4)) for _ in range(n_dims)]
    n_rows = draw(st.integers(0, 25))
    dims = tuple("ABC"[:n_dims])
    rows = [tuple(draw(st.integers(0, c - 1)) for c in cards)
            for _ in range(n_rows)]
    measures = [float(draw(st.integers(0, 9))) for _ in range(n_rows)]
    return Relation(dims, rows, measures)


class TestPropertyIdentity:
    """Property-based: the pool stays cell-identical to sequential BUC
    with the seed python kernel on arbitrary small relations."""

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @settings(max_examples=5, deadline=None)
    @given(relation=tiny_relations(), minsup=st.integers(1, 3))
    def test_pool_matches_buc_python(self, kernel, relation, minsup):
        expected, _stats, _writer = buc_iceberg_cube(relation, minsup=minsup)
        got = multiprocess_iceberg_cube(relation, minsup=minsup, workers=2,
                                        kernel=kernel)
        assert got.equals(expected), got.diff(expected)

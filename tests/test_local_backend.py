"""The real multiprocess backend agrees with the oracle."""

import pytest

from repro.core import SumThreshold
from repro.core.naive import naive_iceberg_cube
from repro.data import Relation
from repro.errors import PlanError
from repro.parallel.local import multiprocess_iceberg_cube


class TestMultiprocessCube:
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    def test_single_worker_matches_naive(self, small_skewed, minsup):
        expected = naive_iceberg_cube(small_skewed, minsup=minsup)
        got = multiprocess_iceberg_cube(small_skewed, minsup=minsup, workers=1)
        assert got.equals(expected), got.diff(expected)

    def test_pool_matches_naive(self, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        got = multiprocess_iceberg_cube(small_skewed, minsup=2, workers=2,
                                        batch_size=3)
        assert got.equals(expected), got.diff(expected)

    def test_sum_threshold(self, small_skewed):
        threshold = SumThreshold(30.0)
        expected = naive_iceberg_cube(small_skewed, minsup=threshold)
        got = multiprocess_iceberg_cube(small_skewed, minsup=threshold, workers=2)
        assert got.equals(expected)

    def test_sales_example(self, sales):
        expected = naive_iceberg_cube(sales, minsup=2)
        got = multiprocess_iceberg_cube(sales, minsup=2, workers=2)
        assert got.equals(expected)

    def test_empty_relation(self):
        rel = Relation(("A", "B"), [])
        got = multiprocess_iceberg_cube(rel, workers=1)
        assert got.total_cells() == 0

    def test_validation(self, small_uniform):
        with pytest.raises(PlanError):
            multiprocess_iceberg_cube(small_uniform, workers=0)
        with pytest.raises(PlanError):
            multiprocess_iceberg_cube(small_uniform, dims=())
        bad = Relation(("A",), [(0,)], [-1.0])
        with pytest.raises(PlanError):
            multiprocess_iceberg_cube(bad, minsup=SumThreshold(1.0))

    def test_dims_subset(self, small_uniform):
        expected = naive_iceberg_cube(small_uniform, dims=("A", "C"), minsup=2)
        got = multiprocess_iceberg_cube(small_uniform, dims=("A", "C"),
                                        minsup=2, workers=2)
        assert got.equals(expected)

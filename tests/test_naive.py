"""The naive oracle, validated on the thesis' own worked examples."""

from repro.core.naive import naive_cuboid, naive_iceberg_cube


class TestSalesExample:
    """Figure 2.2: CUBE of SALES on Model, Year, Color, SUM(Sales)."""

    def test_all_node(self, sales):
        result = naive_iceberg_cube(sales)
        assert result.cuboid(()) == {(): (18, 941.0)}

    def test_one_dimensional_cuboids_match_figure_2_2(self, sales):
        # Aggregates recomputed from Figure 2.2's detail rows (the
        # printed aggregate table has known off-by-one typos; the values
        # that are consistent — 1990=343, 1991=314, blue=339 — match).
        result = naive_iceberg_cube(sales)
        decoded = result.decoded(sales.encoder)
        assert decoded[("Model",)][("Chevy",)] == (9, 508.0)
        assert decoded[("Model",)][("Ford",)] == (9, 433.0)
        assert decoded[("Year",)][(1990,)] == (6, 343.0)
        assert decoded[("Year",)][(1991,)] == (6, 314.0)
        assert decoded[("Year",)][(1992,)] == (6, 284.0)
        assert decoded[("Color",)][("red",)] == (6, 233.0)
        assert decoded[("Color",)][("white",)] == (6, 369.0)
        assert decoded[("Color",)][("blue",)] == (6, 339.0)

    def test_two_dimensional_cuboids_match_figure_2_2(self, sales):
        decoded = naive_iceberg_cube(sales).decoded(sales.encoder)
        assert decoded[("Model", "Year")][("Chevy", 1990)] == (3, 154.0)
        assert decoded[("Model", "Color")][("Ford", "white")] == (3, 133.0)
        assert decoded[("Year", "Color")][(1992, "blue")] == (2, 110.0)

    def test_cuboid_count_is_2_to_the_d(self, sales):
        result = naive_iceberg_cube(sales)
        assert len(result.cuboids) == 8

    def test_total_cells_of_full_cube(self, sales):
        # 1 (all) + 2 + 3 + 3 + 6 + 6 + 9 + 18 = 48 rows, as in Fig 2.2's
        # CUBE output (the thesis shows the 2^3 group-bys of SALES).
        assert naive_iceberg_cube(sales).total_cells() == 48


class TestIcebergExample:
    """Table 2.1 / Figure 2.1: the prototypical iceberg query."""

    def test_iceberg_query_with_threshold_two(self, example_relation):
        cells = naive_cuboid(example_relation, ("Item", "Location"))
        qualifying = {
            example_relation.encoder.decode_cell(("Item", "Location"), cell): agg
            for cell, agg in cells.items()
            if agg[0] >= 3
        }
        # The thesis' answer: <Sony 25" TV, Seattle, 2100>.
        assert qualifying == {("Sony 25in TV", "Seattle"): (3, 2100.0)}


class TestThresholds:
    def test_minsup_filters_cells(self, small_uniform):
        full = naive_iceberg_cube(small_uniform, minsup=1)
        iceberg = naive_iceberg_cube(small_uniform, minsup=4)
        assert iceberg.total_cells() < full.total_cells()
        for cuboid, cells in iceberg.cuboids.items():
            for cell, (count, value) in cells.items():
                assert count >= 4
                assert full.cuboids[cuboid][cell] == (count, value)

    def test_minsup_above_relation_size_keeps_nothing(self, small_uniform):
        result = naive_iceberg_cube(small_uniform, minsup=len(small_uniform) + 1)
        assert result.total_cells() == 0

    def test_dims_subset(self, small_uniform):
        result = naive_iceberg_cube(small_uniform, dims=("A", "C"))
        assert set(result.cuboids) <= {("A", "C"), ("A",), ("C",), ()}

    def test_cuboid_in_any_dim_order(self, small_uniform):
        ab = naive_cuboid(small_uniform, ("A", "B"))
        ba = naive_cuboid(small_uniform, ("B", "A"))
        assert {(b, a): v for (a, b), v in ab.items()} == ba

"""Unit tests for the degradation primitives in repro.serve.resilience.

Every class takes an injectable monotonic clock, so these tests drive
open/half-open/closed transitions and deadline expiry deterministically,
without sleeping.
"""

import threading

import pytest

from repro.errors import DeadlineExceededError, PlanError, ServerOverloadedError
from repro.serve.resilience import AdmissionGate, CircuitBreaker, Deadline


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_counts_down_and_expires(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        deadline.check("early")  # no raise
        clock.advance(1.5)
        assert deadline.elapsed() == pytest.approx(1.5)
        assert not deadline.expired()
        clock.advance(0.6)
        assert deadline.expired()
        assert deadline.remaining() < 0

    def test_check_raises_with_stage(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError) as exc_info:
            deadline.check("store scan")
        message = str(exc_info.value)
        assert "store scan" in message
        assert exc_info.value.deadline_s == pytest.approx(0.5)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(PlanError):
            Deadline(0.0)
        with pytest.raises(PlanError):
            Deadline(-1.0)


class TestAdmissionGate:
    def test_sheds_past_the_limit(self):
        gate = AdmissionGate(2)
        gate.acquire()
        gate.acquire()
        with pytest.raises(ServerOverloadedError) as exc_info:
            gate.acquire()
        assert exc_info.value.pending == 2
        assert exc_info.value.limit == 2
        stats = gate.stats()
        assert stats == {"limit": 2, "pending": 2, "admitted": 2, "shed": 1}

    def test_release_reopens_admission(self):
        gate = AdmissionGate(1)
        gate.acquire()
        with pytest.raises(ServerOverloadedError):
            gate.acquire()
        gate.release()
        gate.acquire()  # admitted again
        assert gate.stats()["admitted"] == 2

    def test_release_never_goes_negative(self):
        gate = AdmissionGate(1)
        gate.release()
        assert gate.stats()["pending"] == 0

    def test_limit_validated(self):
        with pytest.raises(PlanError):
            AdmissionGate(0)

    def test_thread_safety_under_contention(self):
        gate = AdmissionGate(8)
        sheds = []

        def worker(_):
            for _ in range(200):
                try:
                    gate.acquire()
                except ServerOverloadedError:
                    sheds.append(1)
                else:
                    gate.release()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = gate.stats()
        assert stats["pending"] == 0
        assert stats["admitted"] + stats["shed"] == 8 * 200


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=5.0,
                                 clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"  # not yet
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()
        assert breaker.rejections == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.allow()       # the single probe slot
        assert not breaker.allow()   # no second concurrent probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.allow()

    def test_stays_open_during_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(9.9)
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == "half_open"

    def test_parameters_validated(self):
        with pytest.raises(PlanError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(PlanError):
            CircuitBreaker(reset_after_s=0)
        with pytest.raises(PlanError):
            CircuitBreaker(half_open_probes=0)

    def test_stats_snapshot(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_after_s=1.0,
                                 clock=clock)
        breaker.record_failure()
        stats = breaker.stats()
        assert stats["state"] == "closed"
        assert stats["consecutive_failures"] == 1
        assert stats["trips"] == 0

"""Algorithm PT: binary task division, affinity, BPP-BUC execution."""

from repro.cluster import cluster1
from repro.core.naive import naive_iceberg_cube
from repro.lattice import ProcessingTree
from repro.parallel import PT


class TestPlanning:
    def test_task_count_follows_ratio(self, small_uniform):
        tree, tasks = PT(task_ratio=2).plan_tasks(small_uniform.dims, 2)
        assert len(tasks) == 4

    def test_division_caps_at_lattice_size(self, small_uniform):
        tree, tasks = PT(task_ratio=32).plan_tasks(small_uniform.dims, 8)
        assert len(tasks) == 2 ** len(small_uniform.dims)  # all single nodes

    def test_tasks_cover_every_cuboid_exactly_once(self, small_uniform):
        tree, tasks = PT(task_ratio=4).plan_tasks(small_uniform.dims, 2)
        nodes = [n for t in tasks for n in t.nodes(tree)]
        assert sorted(nodes) == sorted(ProcessingTree(small_uniform.dims).subtree_nodes(()))


class TestExecution:
    def test_exact_result(self, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        run = PT().run(small_skewed, minsup=2, cluster_spec=cluster1(4))
        assert run.result.equals(expected), run.result.diff(expected)

    def test_task_count_recorded(self, small_uniform):
        run = PT(task_ratio=2).run(small_uniform, minsup=1, cluster_spec=cluster1(2))
        assert run.extras["n_tasks"] == 4
        assert len(run.simulation.schedule) == 4

    def test_load_balance(self, small_skewed):
        run = PT().run(small_skewed, minsup=2, cluster_spec=cluster1(4))
        assert run.simulation.load_imbalance() < 1.35

    def test_breadth_first_writing(self, small_skewed):
        # PT uses BPP-BUC: cuboid switches stay near the cuboid count,
        # far below the cell count.
        run = PT().run(small_skewed, minsup=1, cluster_spec=cluster1(2))
        cells = run.result.total_cells()
        switches = sum(1 for _ in run.simulation.schedule)
        assert cells > 4 * switches


class TestAffinityAndGranularity:
    def test_affinity_saves_time(self, small_skewed):
        with_affinity = PT().run(small_skewed, minsup=2, cluster_spec=cluster1(2))
        without = PT(affinity=False).run(small_skewed, minsup=2,
                                         cluster_spec=cluster1(2))
        assert with_affinity.result.equals(without.result)
        assert with_affinity.makespan <= without.makespan

    def test_granularity_tradeoff_results_identical(self, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=2)
        for ratio in (1, 4, 32):
            run = PT(task_ratio=ratio).run(small_skewed, minsup=2,
                                           cluster_spec=cluster1(4))
            assert run.result.equals(expected), ratio

    def test_coarser_tasks_worse_balance(self, small_skewed):
        coarse = PT(task_ratio=1).run(small_skewed, minsup=2,
                                      cluster_spec=cluster1(4))
        fine = PT(task_ratio=16).run(small_skewed, minsup=2,
                                     cluster_spec=cluster1(4))
        assert fine.simulation.load_imbalance() <= coarse.simulation.load_imbalance()

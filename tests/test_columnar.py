"""Columnar kernel: key packing, refinement equivalence, fallbacks.

The contract under test: every kernel (``python``, ``columnar``,
``numpy``) produces the *same cells* as the seed engine and the naive
oracle, for any relation, threshold, dimension order and traversal —
and the packed-key machinery degrades to tuple keys (with a logged
warning) when the cardinalities overflow the 63-bit budget.
"""

import logging
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OpStats, SumThreshold
from repro.core.buc import buc_iceberg_cube
from repro.core.columnar import (
    HAS_NUMPY,
    MAX_KEY_BITS,
    ColumnarFrame,
    ColumnarKernel,
    KeyPacking,
    PythonKernel,
    aggregate_cuboid,
    best_kernel_name,
    bits_for,
    kernel_from_frame,
    resolve_kernel,
)
from repro.core.naive import naive_iceberg_cube
from repro.core.result import CubeResult
from repro.core.thresholds import AndThreshold, CountThreshold
from repro.core.writer import ResultWriter
from repro.data import Relation, zipf_relation
from repro.errors import PlanError, SchemaError
from repro.parallel.local import multiprocess_iceberg_cube

KERNEL_NAMES = ["columnar"] + (["numpy"] if HAS_NUMPY else [])


def big_cardinality_relation():
    """Cardinalities whose bit widths sum past 63: packing impossible."""
    rows = [
        (0, 0, 0),
        (2**40 - 1, 2**21 - 1, 5),
        (123456789, 7, 5),
        (2**40 - 1, 2**21 - 1, 5),
        (123456789, 7, 2),
    ]
    return Relation(("A", "B", "C"), rows, [1.0, 2.0, 3.0, 4.0, 5.0])


class TestKeyPacking:
    def test_bits_for(self):
        assert bits_for(0) == 1
        assert bits_for(1) == 1
        assert bits_for(2) == 1
        assert bits_for(3) == 2
        assert bits_for(16) == 4
        assert bits_for(17) == 5

    def test_plan_overflow_returns_none(self):
        assert KeyPacking.plan([2**32, 2**32]) is None
        assert KeyPacking.plan([2**32, 2**31]) is not None

    def test_pack_round_trip(self):
        packing = KeyPacking.plan([16, 3, 7])
        row = (11, 2, 6)
        key = packing.pack(row)
        assert packing.unpack(key, (0, 1, 2)) == row
        for position, code in enumerate(row):
            assert packing.extract(key, position) == code

    def test_mask_selects_prefix(self):
        packing = KeyPacking.plan([4, 4, 4])
        key = packing.pack((3, 1, 2))
        mask = packing.mask_for((0, 1))
        assert packing.unpack(key & mask, (0, 1)) == (3, 1)
        assert packing.unpack(key & mask, (2,)) == (0,)

    @given(
        cards=st.lists(st.integers(1, 50), min_size=1, max_size=5),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_masked_key_order_is_lexicographic(self, cards, data):
        """Sorting by masked packed key == sorting by the cell tuple."""
        packing = KeyPacking.plan(cards)
        assert packing is not None  # 5 * 6 bits stays under 63
        rows = data.draw(
            st.lists(
                st.tuples(*[st.integers(0, c - 1) for c in cards]),
                min_size=0,
                max_size=20,
            )
        )
        positions = data.draw(st.permutations(range(len(cards))))
        # Only *prefix-in-layout-order* masks promise lexicographic
        # order; take a sorted prefix of the permutation.
        k = data.draw(st.integers(1, len(cards)))
        positions = tuple(sorted(positions[:k]))
        mask = packing.mask_for(positions)
        by_key = sorted(rows, key=lambda r: packing.pack(r) & mask)
        by_tuple = sorted(rows, key=lambda r: tuple(r[p] for p in positions))
        assert [tuple(r[p] for p in positions) for r in by_key] == [
            tuple(r[p] for p in positions) for r in by_tuple
        ]


class TestColumnarFrame:
    def test_from_relation(self, sales):
        frame = ColumnarFrame.from_relation(sales)
        assert frame.dims == sales.dims
        assert frame.n_rows == len(sales)
        assert frame.packing is not None
        assert frame.keys is not None
        for i, row in enumerate(sales.rows):
            assert frame.packing.unpack(frame.keys[i], range(len(sales.dims))) \
                == tuple(row)

    def test_overflow_falls_back_to_tuple_keys(self, caplog):
        relation = big_cardinality_relation()
        with caplog.at_level(logging.WARNING, logger="repro.core.columnar"):
            frame = ColumnarFrame.from_relation(relation)
        assert frame.packing is None
        assert frame.keys is None
        assert any("falling back to tuple keys" in r.message
                   for r in caplog.records)
        # The group-by still answers correctly through the tuple path.
        cells = aggregate_cuboid(frame, ("A", "B"))
        assert cells[(2**40 - 1, 2**21 - 1)] == (2, 6.0)
        assert cells[(123456789, 7)] == (2, 8.0)

    def test_dims_subset_and_order(self, sales):
        frame = ColumnarFrame.from_relation(sales, ("Color", "Model"))
        assert frame.dims == ("Color", "Model")
        assert len(frame.columns) == 2


class TestAggregateCuboid:
    @pytest.mark.parametrize("use_numpy", [False, True] if HAS_NUMPY else [False])
    def test_matches_naive(self, small_skewed, use_numpy):
        frame = ColumnarFrame.from_relation(small_skewed)
        expected = naive_iceberg_cube(small_skewed, minsup=1)
        for cuboid in [("A",), ("A", "B"), ("B", "D"), ("A", "B", "C", "D")]:
            got = aggregate_cuboid(frame, cuboid, use_numpy=use_numpy)
            want = expected.cuboids[cuboid]
            assert set(got) == set(want)
            for cell, (count, total) in got.items():
                assert count == want[cell][0]
                assert total == pytest.approx(want[cell][1])

    def test_threshold_filters(self, sales):
        frame = ColumnarFrame.from_relation(sales)
        everything = aggregate_cuboid(frame, ("Model",))
        filtered = aggregate_cuboid(frame, ("Model",),
                                    threshold=CountThreshold(10))
        assert set(filtered) == {
            c for c, (n, _t) in everything.items() if n >= 10
        }

    def test_unknown_dimension(self, sales):
        frame = ColumnarFrame.from_relation(sales)
        with pytest.raises(PlanError):
            aggregate_cuboid(frame, ("Nope",))


class TestKernelEquivalence:
    """Forced kernels against the seed engine on fixed workloads."""

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @pytest.mark.parametrize("breadth_first", [False, True])
    def test_matches_python_kernel(self, small_skewed, kernel, breadth_first):
        expected, _, _ = buc_iceberg_cube(small_skewed, minsup=2,
                                          kernel="python")
        got, _, _ = buc_iceberg_cube(small_skewed, minsup=2, kernel=kernel,
                                     breadth_first=breadth_first)
        assert got.equals(expected), got.diff(expected)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_sum_threshold(self, small_skewed, kernel):
        threshold = SumThreshold(40.0)
        expected = naive_iceberg_cube(small_skewed, minsup=threshold)
        got, _, _ = buc_iceberg_cube(small_skewed, minsup=threshold,
                                     kernel=kernel, breadth_first=True)
        assert got.equals(expected), got.diff(expected)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_all_qualify(self, sales, kernel):
        """minsup 1: nothing pruned, every cell of the full cube."""
        expected = naive_iceberg_cube(sales, minsup=1)
        got, _, _ = buc_iceberg_cube(sales, minsup=1, kernel=kernel,
                                     breadth_first=True)
        assert got.equals(expected), got.diff(expected)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_empty_relation(self, kernel):
        rel = Relation(("A", "B"), [])
        got, _, _ = buc_iceberg_cube(rel, minsup=1, kernel=kernel)
        assert got.total_cells() == 0

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_large_zipf(self, kernel):
        rel = zipf_relation(2000, [12, 8, 6, 5, 3], skew=0.9, seed=3)
        expected, _, _ = buc_iceberg_cube(rel, minsup=3, kernel="python")
        got, _, _ = buc_iceberg_cube(rel, minsup=3, kernel=kernel,
                                     breadth_first=True)
        assert got.equals(expected), got.diff(expected)


@st.composite
def relations(draw):
    n_dims = draw(st.integers(1, 4))
    cards = draw(st.lists(st.integers(1, 5), min_size=n_dims,
                          max_size=n_dims))
    n_rows = draw(st.integers(0, 40))
    rows = [
        tuple(draw(st.integers(0, c - 1)) for c in cards)
        for _ in range(n_rows)
    ]
    # Integer-valued measures: threshold comparisons never sit on a
    # float rounding boundary, so vectorised and looped accumulation
    # agree exactly.
    measures = [float(draw(st.integers(0, 20))) for _ in range(n_rows)]
    dims = tuple("ABCD"[:n_dims])
    return Relation(dims, rows, measures)


def thresholds():
    return st.one_of(
        st.integers(1, 5).map(CountThreshold),
        st.integers(0, 50).map(lambda v: SumThreshold(float(v))),
        st.tuples(st.integers(1, 3), st.integers(0, 30)).map(
            lambda t: AndThreshold(
                CountThreshold(t[0]), SumThreshold(float(t[1]))
            )
        ),
    )


class TestKernelProperties:
    @given(relation=relations(), threshold=thresholds(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_all_kernels_match_naive(self, relation, threshold, data):
        dims = tuple(data.draw(st.permutations(relation.dims)))
        expected = naive_iceberg_cube(relation, dims, threshold)
        for kernel in ["python"] + KERNEL_NAMES:
            for breadth_first in (False, True):
                got, _, _ = buc_iceberg_cube(
                    relation, dims, minsup=threshold, kernel=kernel,
                    breadth_first=breadth_first,
                )
                assert got.equals(expected), (
                    kernel, breadth_first, got.diff(expected)
                )

    @given(relation=relations(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_aggregate_cuboid_matches_naive(self, relation, data):
        k = data.draw(st.integers(1, len(relation.dims)))
        cuboid = tuple(sorted(
            data.draw(st.permutations(relation.dims))[:k],
            key=relation.dims.index,
        ))
        frame = ColumnarFrame.from_relation(relation)
        expected = naive_iceberg_cube(relation, minsup=1)
        got = aggregate_cuboid(frame, cuboid)
        want = expected.cuboids.get(cuboid, {})
        assert set(got) == set(want)
        for cell, (count, total) in got.items():
            assert count == want[cell][0]
            assert total == pytest.approx(want[cell][1])


class TestOverflowFallback:
    def test_sequential_kernels(self):
        relation = big_cardinality_relation()
        expected = naive_iceberg_cube(relation, minsup=1)
        for kernel in KERNEL_NAMES:
            got, _, _ = buc_iceberg_cube(relation, minsup=1, kernel=kernel,
                                         breadth_first=True)
            assert got.equals(expected), got.diff(expected)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_multiprocess(self, workers, caplog):
        relation = big_cardinality_relation()
        expected = naive_iceberg_cube(relation, minsup=1)
        with caplog.at_level(logging.WARNING, logger="repro.core.columnar"):
            got = multiprocess_iceberg_cube(relation, minsup=1,
                                            workers=workers)
        assert got.equals(expected), got.diff(expected)
        assert any("falling back to tuple keys" in r.message
                   for r in caplog.records)


class TestCountingSortStats:
    def test_bucket_sort_is_charged(self):
        """The ``sorted(buckets)`` pass inside the counting refinement is
        real comparison work and must show up in ``sort_units``."""
        rows = [(i % 5, 0) for i in range(20)]
        relation = Relation(("A", "B"), rows)
        kernel = PythonKernel(relation, relation.dims, counting_sort=True)
        stats = OpStats()
        groups = kernel.refine(0, len(rows), 0, stats)
        assert len(groups) == 5
        # Linear bucketing: two passes of moves, plus the sort of the 5
        # distinct values — NOT a full 20-key comparison sort.
        assert stats.partition_moves == 40
        assert stats.sort_units == pytest.approx(5 * math.log2(5))

    def test_counting_matches_comparison_sort(self, small_skewed):
        plain, _, _ = buc_iceberg_cube(small_skewed, minsup=2,
                                       counting_sort=False)
        counting, _, _ = buc_iceberg_cube(small_skewed, minsup=2,
                                          counting_sort=True)
        assert counting.equals(plain)


class TestKernelResolution:
    def test_auto_picks_fastest(self):
        assert best_kernel_name() == ("numpy" if HAS_NUMPY else "columnar")

    def test_unknown_kernel(self, sales):
        with pytest.raises(PlanError):
            resolve_kernel("bogus")

    def test_prebuilt_instance_passes_through(self, sales):
        frame = ColumnarFrame.from_relation(sales)
        kernel = ColumnarKernel(frame)
        factory = resolve_kernel(kernel)
        assert factory(sales, sales.dims) is kernel

    def test_frame_kernels(self, sales):
        frame = ColumnarFrame.from_relation(sales)
        assert kernel_from_frame("columnar", frame).name == "columnar"
        if HAS_NUMPY:
            assert kernel_from_frame("auto", frame).name == "numpy"
        with pytest.raises(PlanError):
            kernel_from_frame("python", frame)


class TestColumnWriting:
    def test_add_columns_accumulates(self):
        result = CubeResult(("A",))
        result.add_columns(("A",), [(0,), (1,)], [2, 3], [5.0, 6.0])
        result.add_columns(("A",), [(1,), (2,)], [1, 4], [1.0, 9.0])
        assert result.cuboids[("A",)] == {
            (0,): (2, 5.0), (1,): (4, 7.0), (2,): (4, 9.0),
        }

    def test_add_columns_rejects_duplicates_in_block(self):
        result = CubeResult(("A",))
        with pytest.raises(SchemaError):
            result.add_columns(("A",), [(0,), (0,)], [1, 1], [1.0, 1.0])

    def test_write_columns_accounting_matches_write_block(self):
        cells = [(0,), (1,), (2,)]
        counts = [2, 3, 4]
        values = [1.0, 2.0, 3.0]
        by_block = ResultWriter(("A", "B"))
        by_block.write_block(("A",), list(zip(cells, counts, values)))
        by_columns = ResultWriter(("A", "B"))
        by_columns.write_columns(("A",), cells, counts, values)
        assert by_columns.cells_written == by_block.cells_written
        assert by_columns.bytes_written == by_block.bytes_written
        assert by_columns.cuboid_switches == by_block.cuboid_switches
        assert by_columns.result.cuboids == by_block.result.cuboids

    def test_write_columns_empty_is_noop(self):
        writer = ResultWriter(("A",))
        writer.write_columns(("A",), [], [], [])
        assert writer.cells_written == 0
        assert writer.cuboid_switches == 0

"""Online aggregation: watch an iceberg query refine itself live.

Chapter 5's scenario: the data is too big to precompute every threshold,
so the analyst runs POL and watches the answer converge — an estimate
appears after the first step and tightens as more blocks stream in.
This example prints the progressive snapshots like a tiny dashboard,
including a confidence interval for one tracked cell, then compares the
final answer against an exact offline computation.

Run:  python examples/online_dashboard.py
"""

from repro import POL, cluster3, iceberg_query, weather_relation
from repro.online.sampling import count_confidence_interval

DIMS = ("precip_code", "hour", "weather_change")


def main():
    relation = weather_relation(60_000, dims=DIMS)
    minsup = 50
    print("online iceberg query over %d tuples:" % len(relation))
    print("  SELECT %s, SUM(measure) GROUP BY %s HAVING COUNT(*) >= %d"
          % (", ".join(DIMS), ", ".join(DIMS), minsup))
    print("cluster: 8 nodes on Myrinet (the thesis' Cluster3)\n")

    pol = POL(buffer_size=2_000, keep_estimates=True)
    run = pol.run(relation, dims=DIMS, minsup=minsup, cluster_spec=cluster3(8))

    # Track the cell that ends up the most frequent.
    top_cell = max(run.cells, key=lambda c: run.cells[c][0])
    print("%-5s %-9s %-10s %-12s %-22s" % ("step", "done", "sim time", "qualifying",
                                           "estimate for top cell"))
    for snap in run.snapshots:
        estimate = (snap.estimates or {}).get(top_cell)
        if estimate is not None:
            observed = int(round(estimate * snap.fraction))
            lo, hi = count_confidence_interval(observed, snap.processed, snap.total)
            cell_info = "%6.0f  [%5.0f, %5.0f]" % (estimate, lo, hi)
        else:
            cell_info = "below threshold"
        print("%-5d %7.0f%% %9.2fs %-12d %s"
              % (snap.step, 100 * snap.fraction, snap.sim_time, snap.qualifying,
                 cell_info))

    print("\nfinal: %d qualifying cells in %.2f simulated seconds"
          % (len(run.cells), run.makespan))

    exact = iceberg_query(relation, DIMS, minsup=minsup, aggregate="count")
    online_counts = {cell: count for cell, (count, _sum) in run.cells.items()}
    assert online_counts == exact, "online result must equal offline"
    print("verified: online answer matches the exact offline GROUP BY "
          "(%d cells)" % len(exact))
    print("top cell %s: final count %d" % (top_cell, run.cells[top_cell][0]))


if __name__ == "__main__":
    main()

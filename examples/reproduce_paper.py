"""Regenerate every table and figure of the thesis in one run.

Runs the full experiment registry (Tables 1.1 and 5.1, Figures 3.6,
4.1-4.7, Section 5.1, Figures 5.3 and 5.4) at the configured bench
scale, prints each thesis-style table with its shape checks, and exits
nonzero if any reproduced shape disagrees with the paper.  With
``--ablations`` / ``--extensions`` / ``--all`` it also runs the
design-decision ablations and the future-work extension experiments.

Run:  python examples/reproduce_paper.py            (scaled workloads)
      python examples/reproduce_paper.py --all
      REPRO_BENCH_SCALE=0.2 python examples/reproduce_paper.py  (bigger)
"""

import sys
import time

from repro.bench import ALL_ABLATIONS, ALL_EXPERIMENTS, ALL_EXTENSIONS, bench_scale


def main(argv):
    experiments = list(ALL_EXPERIMENTS)
    if "--ablations" in argv or "--all" in argv:
        experiments += list(ALL_ABLATIONS)
    if "--extensions" in argv or "--all" in argv:
        experiments += list(ALL_EXTENSIONS)
    print("reproducing the thesis' evaluation at scale factor %.2f (%d experiments)"
          % (bench_scale(), len(experiments)))
    failures = 0
    for experiment in experiments:
        t0 = time.time()
        result = experiment()
        result.report()
        print("(%.1f s)" % (time.time() - t0))
        failures += len(result.failures())
    print()
    if failures:
        print("%d shape check(s) FAILED" % failures)
        return 1
    print("every reproduced table and figure matches the thesis' shape")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Quickstart: compute an iceberg cube on a simulated PC cluster.

This walks the thesis' core loop in ~40 lines:

1. generate a weather-like relation (the paper's evaluation data);
2. ask the recipe which algorithm fits the workload (Figure 4.7);
3. compute the iceberg cube (``CUBE BY ... HAVING COUNT(*) >= 2``) on a
   simulated eight-node PC cluster;
4. inspect cells, timing and load balance.

Run:  python examples/quickstart.py
"""

from repro import cluster1, iceberg_cube, recommend_for, weather_relation
from repro.data import baseline_dims


def main():
    # 20,000 weather reports over five dimensions (scaled-down baseline).
    relation = weather_relation(20_000, dims=baseline_dims(5))
    print("input: %d tuples, dims %s" % (len(relation), ", ".join(relation.dims)))

    picks = recommend_for(relation)
    print("recipe recommends: %s" % ", ".join(picks))

    run = iceberg_cube(
        relation,
        minsup=2,
        algorithm=picks[0].lower(),
        cluster_spec=cluster1(8),  # eight PIII-500 nodes on 100Mb Ethernet
    )

    print("\niceberg cube (COUNT >= 2):")
    print("  qualifying cells : %d" % run.result.total_cells())
    print("  cuboids          : %d" % len(run.result.cuboids))
    print("  output volume    : %.1f KB" % (run.result.output_bytes() / 1024))
    print("  simulated wall   : %.2f s on %d processors"
          % (run.makespan, len(run.simulation.processors)))
    print("  load imbalance   : %.2f (max/mean busy time)"
          % run.simulation.load_imbalance())

    # Peek at the most frequent cells of the (hour,) group-by.
    hour_cells = run.result.cuboid(("hour",))
    top = sorted(hour_cells.items(), key=lambda kv: -kv[1][0])[:3]
    print("\nbusiest hours (cell -> count, sum of measure):")
    for cell, (count, total) in top:
        print("  hour=%-4d -> %5d reports, measure sum %.0f" % (cell[0], count, total))


if __name__ == "__main__":
    main()

"""A materialization advisor: which cuboids should we precompute?

Section 5.1 of the thesis ends with "it is a topic of future work to
develop more intelligent materialization strategies."  This example
plays DBA: given a workload relation and a space budget, it runs the
classic HRU greedy selection, shows which views it picks and why, and
demonstrates the query-cost payoff against the root-only strategy.

Run:  python examples/view_advisor.py
"""

from repro.data import dims_by_cardinality, weather_relation
from repro.online import MaterializedCubeStore, estimate_cuboid_sizes, greedy_select


def main():
    relation = weather_relation(10_000, dims=dims_by_cardinality("smallest", 6))
    print("workload: %d weather reports over %s\n"
          % (len(relation), ", ".join(relation.dims)))

    sizes = estimate_cuboid_sizes(relation)
    print("estimated cuboid sizes (sampled):")
    interesting = [relation.dims, relation.dims[:3], relation.dims[:2],
                   (relation.dims[0],)]
    for cuboid in interesting:
        print("  %-55s ~%d cells" % (" x ".join(cuboid), sizes[tuple(cuboid)]))

    print("\ngreedy selection as the budget grows:")
    print("%-8s %-14s %-18s %s" % ("views", "cells held", "avg query cost",
                                   "last view added"))
    previous_views = []
    for budget in (1, 2, 3, 4, 6, 8):
        store = MaterializedCubeStore(relation, max_views=budget)
        added = [v for v in store.views if v not in previous_views]
        previous_views = store.views
        print("%-8d %-14d %-18.0f %s"
              % (budget, store.materialized_cells(), store.average_query_cost(),
                 " x ".join(added[-1]) if added else "-"))

    # The payoff, end to end: answer a drill-down path from the store.
    store = MaterializedCubeStore(relation, max_views=6)
    root_only = MaterializedCubeStore(relation, max_views=1)
    path = [(relation.dims[0],), relation.dims[:2], relation.dims[:3]]
    print("\ndrill-down path served from the chosen views:")
    for cuboid in path:
        answer = store.query(cuboid, minsup=5)
        view = store.best_view_for(cuboid)
        print("  GROUP BY %-40s -> %4d cells (from view %s)"
              % (", ".join(cuboid), len(answer), " x ".join(view)))
        assert answer == root_only.query(cuboid, minsup=5)  # always exact
    print("\ncells scanned for the path: advisor %d vs root-only %d"
          % (store.cells_scanned, root_only.cells_scanned))


if __name__ == "__main__":
    main()

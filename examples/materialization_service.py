"""A tiny OLAP answering service built on selective materialization.

Section 5.1's idea as a usable component: precompute only the BUC
processing tree's *leaf* cuboids at minsup 1 (every other group-by is a
prefix of a leaf), then serve arbitrary group-by/threshold queries by a
single ordered scan over the covering leaf — drill-downs and roll-ups
included, all without touching the raw data again.

Run:  python examples/materialization_service.py
"""

import time

from repro import LeafMaterialization, cluster1, iceberg_query, weather_relation
from repro.data import baseline_dims

DIMS = baseline_dims(6)


def main():
    relation = weather_relation(15_000, dims=DIMS)
    print("precomputing leaf cuboids for %d tuples over %d dims..."
          % (len(relation), len(DIMS)))
    service = LeafMaterialization(relation, cluster_spec=cluster1(8))
    print("  materialized %d leaves in %.2f simulated s\n"
          % (len(service.leaves), service.precompute_seconds))

    queries = [
        (("precip_code",), 1, "roll-up: by precipitation"),
        (("precip_code", "hour"), 20, "drill-down: add hour, threshold 20"),
        (("precip_code", "hour", "weather_change"), 20, "drill further"),
        (("day", "visibility_class"), 5, "unrelated slice"),
        ((), 1, "grand total"),
    ]
    for dims, minsup, label in queries:
        t0 = time.perf_counter()
        answer = service.query(dims, minsup=minsup)
        elapsed_ms = (time.perf_counter() - t0) * 1000
        leaf = service.covering_leaf(dims) if dims else "(total)"
        print("%-38s -> %5d cells in %6.2f ms  (served from leaf %s)"
              % (label, len(answer), elapsed_ms, "".join(leaf) if dims else leaf))
        # Every answer is exact: cross-check against a fresh scan.
        if dims:
            exact = iceberg_query(relation, dims, minsup=minsup)
            got = {cell: value for cell, (_c, value) in answer.items()}
            assert set(got) == set(exact)

    print("\nall answers verified exact against direct scans")
    print("the raw data was read once, at precompute time")


if __name__ == "__main__":
    main()

"""Real (non-simulated) parallelism on your machine.

Everything else in this library *models* the thesis' cluster; this
example uses the multiprocess backend to actually compute a cube faster
on local cores, and cross-checks the cells against the simulated PT run.

Run:  python examples/real_parallel.py
"""

import os
import time

from repro import PT, cluster1, weather_relation
from repro.data import baseline_dims
from repro.parallel import multiprocess_iceberg_cube


def main():
    relation = weather_relation(30_000, dims=baseline_dims(5))
    print("input: %d tuples, %d dims; machine has %d CPUs\n"
          % (len(relation), len(relation.dims), os.cpu_count() or 1))

    timings = {}
    results = {}
    for workers in (1, min(4, os.cpu_count() or 1)):
        t0 = time.perf_counter()
        results[workers] = multiprocess_iceberg_cube(relation, minsup=2,
                                                     workers=workers)
        timings[workers] = time.perf_counter() - t0
        print("workers=%d : %6.2f real seconds, %d cells"
              % (workers, timings[workers], results[workers].total_cells()))

    lo, hi = min(timings), max(timings)
    if hi > lo:
        print("\nspeedup %d -> %d workers: %.2fx"
              % (lo, hi, timings[lo] / timings[hi]))
        assert results[lo].equals(results[hi])

    simulated = PT().run(relation, minsup=2, cluster_spec=cluster1(8))
    assert simulated.result.equals(results[lo])
    print("cells identical to the simulated PT run "
          "(%.2f *simulated* seconds on 8 PIII-500s)" % simulated.makespan)


if __name__ == "__main__":
    main()

"""Iceberg cubes with revenue (SUM) thresholds, exported to disk.

The thesis evaluates only ``HAVING COUNT(*) >= N`` but notes other
aggregate conditions "can be handled as well": any anti-monotone
condition lets BUC prune.  This example runs the prototypical retail
question — *which product/region combinations bring in real money?* —
as ``HAVING SUM(revenue) >= S``, combines it with a support floor, and
exports the qualifying cells as one CSV per cuboid.

Run:  python examples/revenue_thresholds.py
"""

import os
import tempfile

from repro import AndThreshold, CountThreshold, SumThreshold, cluster1, iceberg_cube
from repro.core.export import load_cube, save_cube
from repro.data import zipf_relation


def main():
    # 12,000 synthetic order lines over (product, region, channel, tier).
    orders = zipf_relation(
        12_000,
        [40, 12, 4, 3],
        skew=[1.1, 0.8, 0.5, 0.3],
        seed=7,
        dims=("product", "region", "channel", "tier"),
        measure_range=(5, 500),
    )
    total = sum(orders.measures)
    print("orders: %d lines, %.0f total revenue" % (len(orders), total))

    # Cells carrying at least 0.5% of total revenue, from at least 20 orders.
    having = AndThreshold(CountThreshold(20), SumThreshold(0.005 * total))
    print("query: CUBE BY product, region, channel, tier HAVING %s"
          % having.describe())

    run = iceberg_cube(orders, minsup=having, algorithm="pt",
                       cluster_spec=cluster1(8))
    print("qualifying cells: %d (of %d at no threshold)"
          % (run.result.total_cells(),
             iceberg_cube(orders, minsup=1, cluster_spec=cluster1(8))
             .result.total_cells()))

    # The biggest single-product revenue pockets.
    by_product = sorted(run.result.cuboid(("product",)).items(),
                        key=lambda kv: -kv[1][1])
    print("\ntop revenue products (count, revenue):")
    for cell, (count, revenue) in by_product[:5]:
        print("  product=%-4d %6d orders  %10.0f" % (cell[0], count, revenue))

    # Export and reload: the on-disk cube round-trips exactly.
    target = os.path.join(tempfile.mkdtemp(prefix="repro-cube-"), "cube")
    manifest = save_cube(run.result, target)
    reloaded = load_cube(target)
    assert reloaded.equals(run.result)
    print("\nexported %d cuboid files (%d cells) to %s — reloaded byte-exact"
          % (len(manifest["cuboids"]), manifest["total_cells"], target))


if __name__ == "__main__":
    main()

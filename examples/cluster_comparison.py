"""Compare all five parallel algorithms across cluster sizes.

Reproduces the *story* of Chapter 4 on one screen: run RP, BPP, ASL, PT
and AHT on 2/4/8 simulated processors, print wall clock, per-processor
load spread, and the I/O split — then check the recipe's advice against
the measurements.

Run:  python examples/cluster_comparison.py
"""

from repro import cluster1, recommend_for, weather_relation
from repro.data import baseline_dims
from repro.parallel import AHT, ASL, BPP, PT, RP


def main():
    relation = weather_relation(8_000, dims=baseline_dims(7))
    print("workload: %d tuples, %d dims, cardinality product %.1e, minsup 2"
          % (len(relation), len(relation.dims), relation.cardinality_product()))

    algorithms = [RP(), BPP(), ASL(), PT(), AHT()]
    print("\n%-6s %-12s %-10s %-10s %-10s" % ("procs", "algorithm", "wall (s)",
                                              "imbalance", "io (s)"))
    best = {}
    for n in (2, 4, 8):
        for algo in algorithms:
            run = algo.run(relation, minsup=2, cluster_spec=cluster1(n))
            io_total = run.simulation.time_breakdown()[1]
            print("%-6d %-12s %-10.2f %-10.2f %-10.2f"
                  % (n, algo.name, run.makespan,
                     run.simulation.load_imbalance(), io_total))
            if n == 8:
                best[algo.name] = run.makespan
        print()

    winner = min(best, key=best.get)
    print("fastest on 8 processors: %s (%.2f s)" % (winner, best[winner]))
    print("recipe recommends:       %s" % ", ".join(recommend_for(relation)))
    print("\nwhat to look for (Chapter 4's findings):")
    print(" - RP: worst wall clock and worst imbalance (static subtree tasks,")
    print("   depth-first writes make its I/O several times everyone else's)")
    print(" - BPP: competitive totals but imbalance grows with processors")
    print("   (range partitioning inherits the data's skew)")
    print(" - ASL/AHT: near-perfect balance; pay structure maintenance instead")
    print(" - PT: pruning + sort-sharing + fine tasks -> the default choice")


if __name__ == "__main__":
    main()

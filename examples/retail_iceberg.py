"""Retail market-basket iceberg analysis (the thesis' Chapter 1 & 2
motivation).

A store accumulates point-of-sale records; analysts only care about
frequently occurring combinations — the tip of the iceberg.  This
example builds a synthetic retail relation from raw (unencoded) values,
runs the prototypical iceberg query of Section 2.1 at several
thresholds and drill-down levels, and contrasts the iceberg answer's
size with the full GROUP BY.

Run:  python examples/retail_iceberg.py
"""

import random

from repro import iceberg_query
from repro.data import from_raw_rows

ITEMS = ["25in TV", "21in TV", "Hi-Fi VCR", "Camcorder", "Stereo", "Walkman"]
BRANDS = ["Sony", "JVC", "Panasonic", "Philips"]
CITIES = ["Seattle", "Vancouver", "LA", "Portland", "Calgary"]
PRICE = {"25in TV": 700, "21in TV": 400, "Hi-Fi VCR": 250, "Camcorder": 900,
         "Stereo": 350, "Walkman": 60}


def synthesize_sales(n_rows=6000, seed=2001):
    """Skewed raw sales rows: a few (brand, item, city) combos dominate."""
    rng = random.Random(seed)
    rows = []
    for _ in range(n_rows):
        # Popularity skew: low indices picked far more often.
        item = ITEMS[min(rng.randrange(len(ITEMS)), rng.randrange(len(ITEMS)))]
        brand = BRANDS[min(rng.randrange(len(BRANDS)), rng.randrange(len(BRANDS)))]
        city = CITIES[min(rng.randrange(len(CITIES)), rng.randrange(len(CITIES)))]
        quantity = rng.randint(1, 3)
        rows.append([brand, item, city, PRICE[item] * quantity])
    return from_raw_rows(("brand", "item", "city"), rows, measure_index=3)


def show(title, cells, relation, dims, limit=5):
    print("\n%s" % title)
    decoded = sorted(
        ((relation.encoder.decode_cell(dims, cell), value) for cell, value in cells.items()),
        key=lambda kv: -kv[1],
    )
    for values, total in decoded[:limit]:
        print("  %-40s revenue %10.0f" % (" / ".join(map(str, values)), total))
    if len(decoded) > limit:
        print("  ... and %d more groups" % (len(decoded) - limit))


def main():
    sales = synthesize_sales()
    print("sales records: %d" % len(sales))

    # Roll-up: revenue by city, keep everything (threshold 1).
    by_city = iceberg_query(sales, ("city",), minsup=1)
    show("revenue by city (full GROUP BY)", by_city, sales, ("city",))

    # The iceberg: (brand, item, city) combos sold at least 150 times.
    dims = ("brand", "item", "city")
    full = iceberg_query(sales, dims, minsup=1)
    iceberg = iceberg_query(sales, dims, minsup=150)
    print("\n(brand, item, city) groups: %d total, %d above threshold 150 "
          "(%.1f%% — the tip of the iceberg)"
          % (len(full), len(iceberg), 100 * len(iceberg) / len(full)))
    show("frequently sold combinations (COUNT >= 150)", iceberg, sales, dims)

    # Drill-down: the analyst got too few rows, lowers the threshold.
    drilled = iceberg_query(sales, dims, minsup=60)
    print("\nafter drill-down to COUNT >= 60: %d groups" % len(drilled))

    # Average ticket for the heavy hitters.
    avg = iceberg_query(sales, dims, minsup=150, aggregate="avg")
    show("average ticket of the heavy hitters", avg, sales, dims, limit=3)


if __name__ == "__main__":
    main()

"""Build-store -> serve -> query over HTTP: the full serving pipeline.

Section 5.1's leaf materialization, persisted and put behind a server:

1. precompute the BUC-tree leaf cuboids and write them to disk as a
   :class:`~repro.serve.store.CubeStore` (sorted, prefix-indexed);
2. reopen the store — no recompute — under a :class:`CubeServer` with
   an LRU query cache and a JSON HTTP endpoint;
3. fire roll-up / drill-down / point queries over HTTP, append fresh
   rows (the cache invalidates itself), and read the telemetry.

Run:  python examples/cube_server.py
"""

import json
import tempfile
from urllib.request import urlopen

from repro import CubeServer, CubeStore, cluster1, weather_relation
from repro.data.weather import baseline_dims

DIMS = baseline_dims(5)


def get(url):
    with urlopen(url) as response:
        return json.loads(response.read())


def main():
    relation = weather_relation(12_000, dims=DIMS)
    history, fresh = relation.slice(0, 10_000), relation.slice(10_000, 12_000)

    with tempfile.TemporaryDirectory() as directory:
        print("building the store (one-time precompute of %d leaf cuboids)..."
              % (2 ** (len(DIMS) - 1)))
        CubeStore.build(history, directory, cluster_spec=cluster1(8)).close()

        # A later process: attach to the store — nothing is recomputed —
        # and serve it.
        store = CubeStore.open(directory)
        print("reopened store: %d leaves, %d cells, generation %d\n"
              % (len(store.leaves), store.total_cells(), store.generation))

        with CubeServer(store, cache_size=128, max_workers=8) as server:
            endpoint = server.serve_http(port=0)
            print("serving on %s\n" % endpoint.url)

            queries = [
                ("roll-up: by precipitation", "/query?cuboid=precip_code&minsup=2"),
                ("drill-down: add hour", "/query?cuboid=precip_code,hour&minsup=2"),
                ("same query again (cache)", "/query?cuboid=precip_code,hour&minsup=2"),
                ("revenue threshold", "/query?cuboid=hour&min_sum=5000"),
                ("point lookup", "/point?cuboid=precip_code&cell=0"),
            ]
            for label, path in queries:
                payload = get(endpoint.url + path)
                print("%-28s -> %4d cells in %7.3f ms  (source: %s)"
                      % (label, len(payload["cells"]), payload["latency_ms"],
                         payload["source"]))

            print("\nappending %d fresh rows (delta maintenance, no rebuild)..."
                  % len(fresh))
            server.append(fresh)
            payload = get(endpoint.url
                          + "/query?cuboid=precip_code,hour&minsup=2")
            print("%-28s -> %4d cells in %7.3f ms  (source: %s — cache was "
                  "invalidated)"
                  % ("same query after append", len(payload["cells"]),
                     payload["latency_ms"], payload["source"]))

            stats = get(endpoint.url + "/stats")
            print("\nserver stats: %d queries, cache hit rate %.2f, "
                  "p50 %.3f ms, p95 %.3f ms"
                  % (stats["telemetry"]["queries"], stats["cache"]["hit_rate"],
                     stats["telemetry"]["p50_ms"], stats["telemetry"]["p95_ms"]))
        store.close()
    print("\nthe store answered every query without touching the raw data")


if __name__ == "__main__":
    main()
